(* End-to-end split-view detection (the ISSUE's acceptance experiment).

   A split-view authority forks the victim relying party's view of
   Continental's repository, suppressing the ROA that keeps the victim
   route (63.174.16.0/20, AS 17054) valid.  With two or more gossiping
   vantages the fork is caught — with verifiable cryptographic evidence —
   strictly before the graced VRP expires and the route goes invalid.
   A single non-gossiping vantage never notices: the stealthy fork is
   locally clean.

   Plus the false-positive guard: an honest universe observed through
   faulty-but-consistent transports (slow and stalling points) never
   raises a fork or consistency alarm over a full run. *)

open Rpki_repo
open Rpki_sim
module Split_view = Rpki_attack.Split_view

let probe_up r label =
  match List.assoc_opt label r.Loop.probe_results with
  | Some up -> up
  | None -> Alcotest.fail ("no probe " ^ label)

let run_with_attack ~monitors ~grace ~gossip_period ~ticks =
  let sv = Loop.split_view_scenario ~monitors ~grace ~gossip_period () in
  let t = sv.Loop.sv_sim in
  ignore (Loop.step t ~now:1);
  ignore (Loop.step t ~now:2);
  let atk =
    Split_view.plan ~authority:sv.Loop.sv_model.Model.continental
      ~target_filename:sv.Loop.sv_target_filename ()
  in
  Split_view.apply atk (Loop.transport t);
  for now = 3 to ticks do
    ignore (Loop.step t ~now)
  done;
  (sv, t)

(* With >= 2 gossiping vantages: fork alarm, verifiable, strictly inside the
   grace window — and the verified evidence now freezes the affected
   prefixes on the RTR cache, so the victim route *survives* the fork
   instead of dying when grace expires (the evidence-triggered hold). *)
let test_detected_before_invalid () =
  let grace = 4 in
  let attack_at = 3 in
  let sv, t = run_with_attack ~monitors:2 ~grace ~gossip_period:1 ~ticks:10 in
  let fork_tick =
    match Loop.first_fork_tick t with
    | Some tk -> tk
    | None -> Alcotest.fail "no fork alarm raised"
  in
  Alcotest.(check bool)
    (Printf.sprintf "fork detected (t%d) before grace would expire (t%d)" fork_tick
       (attack_at + grace))
    true
    (fork_tick < attack_at + grace);
  (* detection no longer stops at the alert layer: the hold pins the
     suppressed VRP at last-good, so the route outlives the grace window *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "victim route still up at t%d (held)" r.Loop.time)
        true (probe_up r "continental-repo");
      if r.Loop.time > fork_tick then
        Alcotest.(check bool)
          (Printf.sprintf "hold active at t%d" r.Loop.time)
          true (r.Loop.rtr_holds > 0))
    (Loop.history t);
  (* the alarm's evidence stands on its own: re-verified from scratch
     against the vantages' public keys *)
  let g = Option.get (Loop.gossip_mesh t) in
  let key_of name =
    List.find_opt (fun (v : Gossip.vantage) -> String.equal v.Gossip.v_name name) (Gossip.vantages g)
    |> Option.map (fun (v : Gossip.vantage) -> Relying_party.transparency_key v.Gossip.v_rp)
  in
  let forks = Gossip.forks g in
  Alcotest.(check bool) "at least one fork alarm" true (forks <> []);
  List.iter
    (fun a ->
      Alcotest.(check bool) "fork evidence verifies from scratch" true
        (Gossip.verify_fork ~key_of a))
    forks;
  (* and the fork names the right publication point *)
  let continental_uri = Pub_point.uri (Authority.pub sv.Loop.sv_model.Model.continental) in
  List.iter
    (fun a ->
      match a with
      | Gossip.Fork { fork_uri; _ } ->
        Alcotest.(check string) "forked point" continental_uri fork_uri
      | _ -> ())
    forks

(* A single vantage, no gossip: the stealthy fork is locally invisible —
   no fork alarm (there is no mesh), and no new validation issue beyond the
   grace bookkeeping note. *)
let test_single_vantage_misses_it () =
  let _, t = run_with_attack ~monitors:0 ~grace:4 ~gossip_period:1 ~ticks:6 in
  Alcotest.(check bool) "no gossip mesh" true (Loop.gossip_mesh t = None);
  Alcotest.(check bool) "no fork tick" true (Loop.first_fork_tick t = None);
  List.iter
    (fun r ->
      match r.Loop.gossip_report with
      | Some _ -> Alcotest.fail "gossip ran without a mesh"
      | None -> ())
    (Loop.history t);
  (* every issue the victim saw after the fork is the grace hold, not a
     validation failure: the stealthy fork verifies locally *)
  match Relying_party.last_result (Loop.vantage t ~name:"victim-rp").Gossip.v_rp with
  | None -> Alcotest.fail "no sync result"
  | Some res ->
    List.iter
      (fun (i : Relying_party.issue) ->
        let is_grace_note =
          String.length i.Relying_party.reason >= 6
          && String.equal (String.sub i.Relying_party.reason 0 6) "grace:"
        in
        Alcotest.(check bool)
          ("local issue is only the grace note: " ^ i.Relying_party.reason)
          true is_grace_note)
      res.Relying_party.issues

(* An overt fork (file dropped, honest manifest kept) is locally visible:
   the victim's own validation flags the manifest mismatch. *)
let test_overt_fork_is_locally_visible () =
  let sv = Loop.split_view_scenario ~monitors:0 ~grace:4 () in
  let t = sv.Loop.sv_sim in
  ignore (Loop.step t ~now:1);
  let atk =
    Split_view.plan ~authority:sv.Loop.sv_model.Model.continental
      ~target_filename:sv.Loop.sv_target_filename ~stealth:Split_view.Overt ()
  in
  Split_view.apply atk (Loop.transport t);
  let r = Loop.step t ~now:2 in
  Alcotest.(check bool) "manifest violation surfaces" true (r.Loop.issue_count > 0);
  match Relying_party.last_result (Loop.vantage t ~name:"victim-rp").Gossip.v_rp with
  | None -> Alcotest.fail "no sync result"
  | Some res ->
    Alcotest.(check bool) "a non-grace issue exists" true
      (List.exists
         (fun (i : Relying_party.issue) ->
           not
             (String.length i.Relying_party.reason >= 6
             && String.equal (String.sub i.Relying_party.reason 0 6) "grace:"))
         res.Relying_party.issues)

(* Lifting the fork heals the victim: the honest view returns and no new
   alarms are raised after the lift. *)
let test_lift_heals () =
  let sv, t = run_with_attack ~monitors:2 ~grace:8 ~gossip_period:1 ~ticks:4 in
  let atk =
    Split_view.plan ~authority:sv.Loop.sv_model.Model.continental
      ~target_filename:sv.Loop.sv_target_filename ()
  in
  Split_view.lift atk (Loop.transport t);
  let before = List.length (Gossip.alarms (Option.get (Loop.gossip_mesh t))) in
  for now = 5 to 8 do
    ignore (Loop.step t ~now)
  done;
  let after = List.length (Gossip.alarms (Option.get (Loop.gossip_mesh t))) in
  Alcotest.(check int) "no new alarms after lift" before after;
  (* the victim route stayed up throughout: grace outlasted the fork *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "route up at t%d" r.Loop.time)
        true (probe_up r "continental-repo"))
    (Loop.history t)

(* The false-positive guard (ISSUE satellite): honest universe, three
   vantages, Slow and Stalling faults on repository points — a full run
   raises no alarm of any kind. *)
let test_no_false_positives_under_faulty_transport () =
  let sv = Loop.split_view_scenario ~monitors:3 ~grace:2 ~gossip_period:1 () in
  let t = sv.Loop.sv_sim in
  let continental_uri = Pub_point.uri (Authority.pub sv.Loop.sv_model.Model.continental) in
  let sprint_uri = Pub_point.uri (Authority.pub sv.Loop.sv_model.Model.sprint) in
  ignore (Loop.step t ~now:1);
  (* degrade different vantages differently: the victim's view of
     Continental crawls, one monitor's view of Sprint stalls outright *)
  Transport.set_fault (Loop.transport t) ~uri:continental_uri (Transport.Slow 3);
  Transport.set_fault
    (Loop.vantage_transport t ~name:"monitor-sprint")
    ~uri:sprint_uri (Transport.Stalling 50);
  for now = 2 to 6 do
    ignore (Loop.step t ~now)
  done;
  Transport.clear_fault (Loop.transport t) ~uri:continental_uri;
  Transport.clear_fault (Loop.vantage_transport t ~name:"monitor-sprint") ~uri:sprint_uri;
  for now = 7 to 9 do
    ignore (Loop.step t ~now)
  done;
  let g = Option.get (Loop.gossip_mesh t) in
  List.iter
    (fun a -> Alcotest.fail ("false positive: " ^ Gossip.describe_alarm a))
    (Gossip.alarms g)

(* Detection latency grows with the gossip period but detection never
   fails while grace holds. *)
let test_gossip_period_trades_latency () =
  List.iter
    (fun period ->
      let _, t = run_with_attack ~monitors:2 ~grace:6 ~gossip_period:period ~ticks:10 in
      match Loop.first_fork_tick t with
      | None -> Alcotest.fail (Printf.sprintf "period %d: fork missed" period)
      | Some tk ->
        Alcotest.(check bool)
          (Printf.sprintf "period %d: detected by t%d" period tk)
          true
          (tk >= 3 && tk <= 3 + period))
    [ 1; 2; 3 ]

(* The late-fork regression: with gossip_period > 1 the victim syncs the
   tainted view on an off-round tick, so last-good absorbs it *before* the
   fork is proven.  The honest-side rollback must then walk the victim's
   own point history back to the newest state matching the proven-honest
   side's VRP-set hash — so both last-good and the RTR hold freeze at
   honest data, not at the absorbed tainted view. *)
let test_late_fork_rolls_back_last_good () =
  let sv = Loop.split_view_scenario ~monitors:2 ~grace:6 ~gossip_period:2 () in
  let t = sv.Loop.sv_sim in
  let uri = Pub_point.uri (Authority.pub sv.Loop.sv_model.Model.continental) in
  let target =
    Rpki_core.Vrp.make ~max_len:20 (Rpki_ip.V4.p "63.174.16.0/20") 17054
  in
  let has_target l =
    List.exists (fun v -> Rpki_core.Vrp.compare v target = 0) l
  in
  ignore (Loop.step t ~now:1);
  ignore (Loop.step t ~now:2);
  let honest = List.assoc uri t.Loop.point_good in
  Alcotest.(check bool) "honest last-good carries the target VRP" true
    (has_target honest);
  let atk =
    Split_view.plan ~authority:sv.Loop.sv_model.Model.continental
      ~target_filename:sv.Loop.sv_target_filename ()
  in
  Split_view.apply atk (Loop.transport t);
  (* t3 is an off-round tick (period 2): the tainted view is validated and
     absorbed into last-good with no gossip to contradict it *)
  ignore (Loop.step t ~now:3);
  Alcotest.(check bool) "no alarm on the off-round tick" true
    (Loop.first_fork_tick t = None);
  Alcotest.(check bool) "tainted view absorbed into last-good" false
    (has_target (List.assoc uri t.Loop.point_good));
  (* t4: the gossip round proves the fork one period late *)
  ignore (Loop.step t ~now:4);
  Alcotest.(check (option int)) "fork proven on the next round" (Some 4)
    (Loop.first_fork_tick t);
  (* last-good rolled back to the newest proven-honest state — byte-equal
     to what the victim itself validated before the fork *)
  let rolled = List.assoc uri t.Loop.point_good in
  Alcotest.(check int) "rolled last-good is the honest state"
    0
    (compare (List.map Rpki_core.Vrp.to_string honest)
       (List.map Rpki_core.Vrp.to_string rolled));
  (* and the hold pinned honest data: the suppressed VRP stays
     router-visible through the end of the run *)
  for now = 5 to 8 do
    ignore (Loop.step t ~now)
  done;
  let final = List.nth (Loop.history t) (List.length (Loop.history t) - 1) in
  Alcotest.(check bool) "hold active" true (final.Loop.rtr_holds > 0);
  Alcotest.(check bool) "suppressed VRP pinned at the honest state" true
    (has_target (Rpki_rtr.Session.cache_vrps (Loop.rtr_cache t)))

(* The equivocation alarm, driven for real: a hand-built vantage pair where
   the "equivocator" gossips one signed tree head, then is swapped for a
   same-named RP (same deterministic signing key, same log id) synced on a
   universe with one ROA's content changed — a head of the same size with a
   different root, which no consistency proof can justify.  The monitor's
   next pull must raise [Gossip.Inconsistent_heads] naming the peer, not a
   log-reset (the log id never changed) and not a fork (no delta records
   to cross-check). *)
let test_equivocating_head_raises_inconsistent_heads () =
  let endpoint name ip =
    Pub_point.create ~uri:("rsync://" ^ name ^ ".example/log")
      ~addr:(Rpki_ip.V4.addr_of_string_exn ip) ~host_asn:64600
  in
  let m_a = Model.build () in
  let rp_eq = Model.relying_party ~name:"equivocator" m_a in
  let rp_mon = Model.relying_party ~name:"monitor" m_a in
  ignore (Relying_party.sync rp_eq ~now:1 ~universe:m_a.Model.universe ());
  ignore (Relying_party.sync rp_mon ~now:1 ~universe:m_a.Model.universe ());
  let v_eq =
    { Gossip.v_name = "equivocator"; v_rp = rp_eq;
      v_endpoint = endpoint "equivocator" "192.0.2.1";
      v_transport = Transport.create () }
  in
  let v_mon =
    { Gossip.v_name = "monitor"; v_rp = rp_mon;
      v_endpoint = endpoint "monitor" "192.0.2.2";
      v_transport = Transport.create () }
  in
  let g = Gossip.create [ v_eq; v_mon ] in
  ignore (Gossip.round g ~now:1);
  Alcotest.(check (list string)) "clean baseline round" []
    (List.map Gossip.describe_alarm (Gossip.alarms g));
  let m_b = Model.build () in
  ignore (Model.add_fig5_right_roa m_b ~now:0);
  let rp_eq' = Model.relying_party ~name:"equivocator" m_b in
  ignore (Relying_party.sync rp_eq' ~now:2 ~universe:m_b.Model.universe ());
  v_eq.Gossip.v_rp <- rp_eq';
  ignore (Gossip.round g ~now:2);
  let inconsistent =
    List.filter
      (function Gossip.Inconsistent_heads _ -> true | _ -> false)
      (Gossip.alarms g)
  in
  (match inconsistent with
   | [] ->
     Alcotest.fail
       (match Gossip.alarms g with
        | [] -> "equivocating head raised no alarm at all"
        | a :: _ -> "wrong alarm kind: " ^ Gossip.describe_alarm a)
   | Gossip.Inconsistent_heads { ih_peer; ih_seen_by; ih_old; ih_new } :: _ ->
     Alcotest.(check string) "alarm names the equivocator" "equivocator" ih_peer;
     Alcotest.(check string) "seen by the monitor" "monitor" ih_seen_by;
     Alcotest.(check string) "same log id across both heads"
       ih_old.Rpki_transparency.Log.h_log_id ih_new.Rpki_transparency.Log.h_log_id;
     Alcotest.(check bool) "the new head does not extend the old" false
       (ih_old.Rpki_transparency.Log.h_size = ih_new.Rpki_transparency.Log.h_size
        && String.equal ih_old.Rpki_transparency.Log.h_root
             ih_new.Rpki_transparency.Log.h_root)
   | _ -> assert false);
  (* no collateral damage: the honest monitor is not accused *)
  List.iter
    (function
      | Gossip.Inconsistent_heads { ih_peer; _ } ->
        Alcotest.(check string) "only the equivocator is accused" "equivocator" ih_peer
      | _ -> ())
    (Gossip.alarms g)

let () =
  Alcotest.run "split-view"
    [ ("detection",
       [ Alcotest.test_case "gossiping vantages catch the fork before the route dies" `Quick
           test_detected_before_invalid;
         Alcotest.test_case "a single vantage misses the stealthy fork" `Quick
           test_single_vantage_misses_it;
         Alcotest.test_case "an overt fork is locally visible" `Quick
           test_overt_fork_is_locally_visible;
         Alcotest.test_case "lifting the fork heals without residual alarms" `Quick
           test_lift_heals;
         Alcotest.test_case "gossip period trades detection latency" `Quick
           test_gossip_period_trades_latency;
         Alcotest.test_case "a late-proven fork rolls last-good back to honest state"
           `Quick test_late_fork_rolls_back_last_good ]);
      ("equivocation",
       [ Alcotest.test_case "a same-size different-root head raises Inconsistent_heads"
           `Quick test_equivocating_head_raises_inconsistent_heads ]);
      ("false-positives",
       [ Alcotest.test_case "faulty-but-consistent transports never alarm" `Quick
           test_no_false_positives_under_faulty_transport ]) ]
