(* Tests for publication points, authorities, the relying party and fault
   injection — including the paper's Side Effect 6 semantics. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

(* One shared model for read-only tests (keygen is the expensive part). *)
let shared = lazy (Model.build ())

let fresh_model () = Model.build ()

let sync ?reachable ?(now = 1) (m : Model.t) rp =
  Relying_party.sync rp ~now ~universe:m.Model.universe ?reachable ()

let sync_indexed ?(now = 1) (m : Model.t) rp =
  let r = Relying_party.sync rp ~now ~universe:m.Model.universe () in
  (r, r.Relying_party.index)

let vrp_strings (r : Relying_party.sync_result) =
  List.map Vrp.to_string r.Relying_party.vrps

(* --- pub point mechanics --- *)

let test_pub_point () =
  let pp = Pub_point.create ~uri:"rsync://x/repo" ~addr:0 ~host_asn:1 in
  Pub_point.put pp ~filename:"b.roa" "bytes-b";
  Pub_point.put pp ~filename:"a.cer" "bytes-a";
  Alcotest.(check (list string)) "sorted" [ "a.cer"; "b.roa" ] (Pub_point.filenames pp);
  Pub_point.put pp ~filename:"a.cer" "bytes-a2";
  Alcotest.(check (option string)) "overwrite" (Some "bytes-a2") (Pub_point.get pp ~filename:"a.cer");
  Alcotest.(check int) "no dup" 2 (List.length (Pub_point.files pp));
  Pub_point.delete pp ~filename:"a.cer";
  Alcotest.(check bool) "deleted" false (Pub_point.mem pp ~filename:"a.cer");
  Alcotest.(check bool) "corrupt missing" false (Pub_point.corrupt pp ~filename:"a.cer" ~byte_index:0);
  Alcotest.(check bool) "corrupt present" true (Pub_point.corrupt pp ~filename:"b.roa" ~byte_index:0);
  Alcotest.(check bool) "corrupted differs" true
    (Pub_point.get pp ~filename:"b.roa" <> Some "bytes-b")

let test_universe () =
  let u = Universe.create () in
  let pp = Pub_point.create ~uri:"rsync://x/repo" ~addr:0 ~host_asn:1 in
  Universe.add u pp;
  Alcotest.(check bool) "found" true (Universe.find u "rsync://x/repo" <> None);
  Alcotest.(check bool) "missing" true (Universe.find u "rsync://y/repo" = None);
  Alcotest.check_raises "duplicate" (Invalid_argument "Universe.add: duplicate uri rsync://x/repo")
    (fun () -> Universe.add u (Pub_point.create ~uri:"rsync://x/repo" ~addr:0 ~host_asn:1))

(* --- the model RPKI end to end --- *)

let test_model_sync () =
  let m = Lazy.force shared in
  let rp = Model.relying_party m in
  let r = sync m rp in
  Alcotest.(check int) "eight VRPs" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check int) "no issues" 0 (List.length r.Relying_party.issues);
  Alcotest.(check int) "four CAs" 4 (List.length r.Relying_party.cas_validated);
  Alcotest.(check bool) "sprint vrp present" true
    (List.mem "(63.161.0.0/16-24, AS1239)" (vrp_strings r))

let test_model_fig5_left () =
  let m = Lazy.force shared in
  let rp = Model.relying_party m in
  let _, idx = sync_indexed m rp in
  let st p o = Origin_validation.classify idx (Route.make (V4.p p) o) in
  (* the two statuses the paper states explicitly *)
  Alcotest.(check string) "/12 unknown" "unknown"
    (Origin_validation.state_to_string (st "63.160.0.0/12" 1239));
  Alcotest.(check string) "63.174.17.0/24 invalid" "invalid"
    (Origin_validation.state_to_string (st "63.174.17.0/24" 17054))

let test_model_deterministic () =
  let a = Model.build () and b = Model.build () in
  let ra = sync a (Model.relying_party a) and rb = sync b (Model.relying_party b) in
  Alcotest.(check (list string)) "same vrps" (vrp_strings ra) (vrp_strings rb)

(* --- authority operations --- *)

let test_issue_and_renew () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let filename, _ =
    Authority.issue_simple_roa m.Model.etb ~asid:65001 ~prefix:(V4.p "63.170.128.0/20") ~now:1 ()
  in
  let r = sync m rp in
  Alcotest.(check int) "nine VRPs" 9 (List.length r.Relying_party.vrps);
  let _ = Authority.renew_roa m.Model.etb ~filename ~now:2 in
  let r2 = sync ~now:2 m rp in
  Alcotest.(check int) "still nine" 9 (List.length r2.Relying_party.vrps);
  Alcotest.(check int) "no issues" 0 (List.length r2.Relying_party.issues)

let test_roa_expiry () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let late = Rtime.add 1 (Rtime.year + 1) in
  (* nothing was refreshed for a year: everything expires *)
  let r = sync ~now:late m rp in
  Alcotest.(check int) "no VRPs" 0 (List.length r.Relying_party.vrps);
  Alcotest.(check bool) "issues reported" true (r.Relying_party.issues <> [])

let test_refresh_keeps_current () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let mid = Rtime.add 1 (Rtime.day * 10) in
  Authority.refresh m.Model.arin ~now:mid;
  Authority.refresh m.Model.sprint ~now:mid;
  Authority.refresh m.Model.etb ~now:mid;
  Authority.refresh m.Model.continental ~now:mid;
  let r = sync ~now:(Rtime.add mid Rtime.day) m rp in
  Alcotest.(check int) "all VRPs" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check int) "no issues" 0 (List.length r.Relying_party.issues)

let test_stale_manifest_detected () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  (* past the refresh window but before cert expiry *)
  let late = Rtime.add 1 (Rtime.day * 20) in
  let r = sync ~now:late m rp in
  Alcotest.(check bool) "stale manifests reported" true
    (List.exists
       (fun (i : Relying_party.issue) ->
         i.Relying_party.filename <> None
         && String.length i.Relying_party.reason >= 5
         && String.sub i.Relying_party.reason 0 5 = "stale")
       r.Relying_party.issues)

(* --- revocation --- *)

let test_revoke_roa () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  Authority.revoke_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:1;
  let r = sync m rp in
  Alcotest.(check int) "seven VRPs" 7 (List.length r.Relying_party.vrps);
  Alcotest.(check bool) "gone" true
    (not (List.mem "(63.174.25.0/24, AS17054)" (vrp_strings r)))

let test_revoke_child_subtree () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  Authority.revoke_child m.Model.sprint m.Model.continental ~now:1;
  let r = sync m rp in
  (* all five Continental ROAs disappear *)
  Alcotest.(check int) "three VRPs left" 3 (List.length r.Relying_party.vrps)

let test_stealth_delete_no_crl () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  Authority.stealth_delete_roa m.Model.continental ~filename:m.Model.roa_cb_26 ~now:1;
  let r = sync m rp in
  Alcotest.(check int) "seven VRPs" 7 (List.length r.Relying_party.vrps);
  (* stealth: zero validation issues — the repository looks self-consistent *)
  Alcotest.(check int) "no issues" 0 (List.length r.Relying_party.issues)

(* --- Side Effect 6: missing/corrupt objects --- *)

let test_se6_missing_roa_invalid_not_unknown () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let fault =
    Fault.delete_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_target22
  in
  Alcotest.(check bool) "fault applied" true (fault <> None);
  let r, idx = sync_indexed m rp in
  (* the manifest flags the hole... *)
  Alcotest.(check bool) "manifest flags missing file" true
    (List.exists
       (fun (i : Relying_party.issue) -> i.Relying_party.reason = "listed on manifest but missing")
       r.Relying_party.issues);
  (* ...and the corresponding route is invalid, NOT unknown, because of the
     covering /20 ROA — the paper's exact example *)
  Alcotest.(check string) "invalid" "invalid"
    (Origin_validation.state_to_string
       (Origin_validation.classify idx (Route.make (V4.p "63.174.16.0/22") 7341)));
  (* repair restores validity *)
  Option.iter Fault.repair fault;
  let _, idx2 = sync_indexed m rp in
  Alcotest.(check string) "valid again" "valid"
    (Origin_validation.state_to_string
       (Origin_validation.classify idx2 (Route.make (V4.p "63.174.16.0/22") 7341)))

let test_se6_corrupt_roa () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let fault =
    Fault.corrupt_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_target22 ()
  in
  Alcotest.(check bool) "fault applied" true (fault <> None);
  let r, idx = sync_indexed m rp in
  Alcotest.(check bool) "hash mismatch reported" true
    (List.exists
       (fun (i : Relying_party.issue) -> i.Relying_party.reason = "hash mismatch with manifest")
       r.Relying_party.issues);
  (* the /22's VRP is lost but the covering /20 ROA survives: invalid *)
  Alcotest.(check string) "vrp lost => covering makes route invalid" "invalid"
    (Origin_validation.state_to_string
       (Origin_validation.classify idx (Route.make (V4.p "63.174.16.0/22") 7341)));
  (* by contrast, corrupting the /20 ROA leaves its route merely unknown:
     nothing else covers it *)
  Option.iter Fault.repair fault;
  let _ = Fault.corrupt_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_target20 () in
  let _, idx2 = sync_indexed m rp in
  Alcotest.(check string) "no covering => unknown" "unknown"
    (Origin_validation.state_to_string
       (Origin_validation.classify idx2 (Route.make (V4.p "63.174.16.0/20") 17054)))

let test_wipe_and_repair () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let fault = Fault.wipe (Authority.pub m.Model.sprint) in
  let r = sync m rp in
  (* Sprint's point is empty: its ROAs and both child certs are gone *)
  Alcotest.(check int) "nothing under sprint" 0 (List.length r.Relying_party.vrps);
  Fault.repair fault;
  let r2 = sync m rp in
  Alcotest.(check int) "all back" 8 (List.length r2.Relying_party.vrps)

(* --- reachability and caching --- *)

let test_unreachable_uses_stale_cache () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let _ = sync m rp in
  (* now continental becomes unreachable; stale cache keeps its VRPs *)
  let unreachable (pp : Pub_point.t) = (Pub_point.uri pp) <> "rsync://rpki.continental.net/repo" in
  let r = sync ~reachable:unreachable ~now:2 m rp in
  Alcotest.(check int) "still eight via cache" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check bool) "stale fetch recorded" true
    (List.exists
       (fun (_, st) -> st = Relying_party.Stale_cache)
       r.Relying_party.fetches)

let test_unreachable_without_cache () =
  let m = fresh_model () in
  let rp = Model.relying_party ~use_stale:false m in
  let _ = sync m rp in
  let unreachable (pp : Pub_point.t) = (Pub_point.uri pp) <> "rsync://rpki.continental.net/repo" in
  let r = sync ~reachable:unreachable ~now:2 m rp in
  Alcotest.(check int) "continental VRPs lost" 3 (List.length r.Relying_party.vrps)

let test_flush_cache () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  let _ = sync m rp in
  Relying_party.flush_cache rp;
  let unreachable (_ : Pub_point.t) = false in
  let r = sync ~reachable:unreachable ~now:2 m rp in
  Alcotest.(check int) "nothing without cache" 0 (List.length r.Relying_party.vrps)

(* --- make-before-break primitive --- *)

let test_certify_key () =
  let m = fresh_model () in
  let rp = Model.relying_party m in
  (* ARIN certifies Continental directly (as a manipulator would) *)
  let _, cert =
    Authority.certify_key m.Model.arin ~subject:"Continental"
      ~public_key:(Authority.key m.Model.continental).Rpki_crypto.Rsa.public
      ~resources:(Authority.cert m.Model.continental).Cert.resources
      ~repo_uri:(Pub_point.uri (Authority.pub m.Model.continental)) ~manifest_uri:"Continental.mft"
      ~now:1
  in
  Alcotest.(check string) "issuer" "ARIN" cert.Cert.issuer;
  (* even if Sprint revokes Continental entirely, the ARIN-issued cert keeps
     the subtree alive *)
  Authority.revoke_child m.Model.sprint m.Model.continental ~now:1;
  let r = sync m rp in
  Alcotest.(check int) "continental survives via reissue" 8 (List.length r.Relying_party.vrps)

let () =
  Alcotest.run "repo"
    [ ( "mechanics",
        [ Alcotest.test_case "pub point" `Quick test_pub_point;
          Alcotest.test_case "universe" `Quick test_universe ] );
      ( "model",
        [ Alcotest.test_case "sync" `Quick test_model_sync;
          Alcotest.test_case "figure 5 left statuses" `Quick test_model_fig5_left;
          Alcotest.test_case "deterministic build" `Slow test_model_deterministic ] );
      ( "authority",
        [ Alcotest.test_case "issue and renew" `Quick test_issue_and_renew;
          Alcotest.test_case "expiry" `Quick test_roa_expiry;
          Alcotest.test_case "refresh" `Quick test_refresh_keeps_current;
          Alcotest.test_case "stale manifest" `Quick test_stale_manifest_detected ] );
      ( "revocation",
        [ Alcotest.test_case "revoke ROA" `Quick test_revoke_roa;
          Alcotest.test_case "revoke child subtree" `Quick test_revoke_child_subtree;
          Alcotest.test_case "stealth delete" `Quick test_stealth_delete_no_crl ] );
      ( "side-effect-6",
        [ Alcotest.test_case "missing => invalid not unknown" `Quick
            test_se6_missing_roa_invalid_not_unknown;
          Alcotest.test_case "corrupt => invalid" `Quick test_se6_corrupt_roa;
          Alcotest.test_case "wipe and repair" `Quick test_wipe_and_repair ] );
      ( "reachability",
        [ Alcotest.test_case "stale cache" `Quick test_unreachable_uses_stale_cache;
          Alcotest.test_case "no stale policy" `Quick test_unreachable_without_cache;
          Alcotest.test_case "flush cache" `Quick test_flush_cache ] );
      ("make-before-break", [ Alcotest.test_case "certify_key" `Quick test_certify_key ]) ]
