(* Equivalence property for the incremental sync pipeline.

   The redesigned relying party memoizes per-point validation, patches its
   origin-validation index with a VRP diff, and feeds the same diff to the
   RTR cache as a serial delta.  The invariant that makes all of that safe:
   an RP syncing incrementally across ticks must be indistinguishable from
   a fresh RP validating from scratch at the same instant — same VRP set,
   same classification verdicts, and a router tracking the incremental
   cache must end up holding exactly that set. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

type world = {
  universe : Universe.t;
  ta : Authority.t;
  children : Authority.t array;
  mutable live : (Authority.t * string) list; (* (issuer, ROA filename) *)
  mutable next_slice : int array; (* per child: next unused /20 slice *)
}

(* TA over 30.0.0.0/8; each child holds 30.c.0.0/16 and issues ROAs over
   /20 slices of it.  Deterministic in [seed]. *)
let build_world seed =
  let rng = Rpki_util.Rng.create seed in
  let universe = Universe.create () in
  let ta =
    Authority.create_trust_anchor
      ~name:(Printf.sprintf "TA%d" seed)
      ~resources:(Resources.of_v4_strings [ "30.0.0.0/8" ])
      ~uri:(Printf.sprintf "rsync://ta%d/repo" seed)
      ~addr:(V4.addr_of_string_exn "198.51.100.1") ~host_asn:1 ~now:0 ~universe ()
  in
  let n_children = 2 + Rpki_util.Rng.int rng 2 in
  let live = ref [] in
  let children =
    Array.init n_children (fun c ->
        let base = (30 lsl 24) lor (c lsl 16) in
        Authority.create_child ta
          ~name:(Printf.sprintf "C%d_%d" seed c)
          ~resources:(Resources.make ~v4:(V4.Set.of_prefix (V4.Prefix.make base 16)) ())
          ~uri:(Printf.sprintf "rsync://c%d_%d/repo" seed c)
          ~addr:(base + 1) ~host_asn:(100 + c) ~now:0 ~universe ())
  in
  let next_slice = Array.make n_children 0 in
  Array.iteri
    (fun c child ->
      let n_roas = 1 + Rpki_util.Rng.int rng 3 in
      for _ = 1 to n_roas do
        let r = next_slice.(c) mod 16 in
        next_slice.(c) <- next_slice.(c) + 1;
        let base = (30 lsl 24) lor (c lsl 16) in
        let prefix = V4.Prefix.make (base lor (r lsl 12)) 20 in
        let asid = 1000 + (c * 100) + r in
        let filename, _ = Authority.issue_simple_roa child ~asid ~prefix ~now:0 () in
        live := (child, filename) :: !live
      done)
    children;
  { universe; ta; children; live = List.rev !live; next_slice }

(* One random universe mutation at time [now].  The equivalence check does
   not care whether the mutation is legitimate maintenance or an attack —
   only that both relying parties observe the same repositories. *)
let mutate w rng ~now =
  let pick_child () =
    let c = Rpki_util.Rng.int rng (Array.length w.children) in
    (c, w.children.(c))
  in
  let pick_live () = Rpki_util.Rng.pick rng w.live in
  let drop_live (a0, f0) =
    (* Authority.t is cyclic (parent/children); compare by identity *)
    w.live <- List.filter (fun (a, f) -> not (a == a0 && f = f0)) w.live
  in
  match Rpki_util.Rng.int rng 5 with
  | 0 ->
    (* issue a fresh ROA *)
    let c, child = pick_child () in
    let r = w.next_slice.(c) mod 16 in
    w.next_slice.(c) <- w.next_slice.(c) + 1;
    let base = (30 lsl 24) lor (c lsl 16) in
    let prefix = V4.Prefix.make (base lor (r lsl 12)) 20 in
    let asid = 2000 + Rpki_util.Rng.int rng 1000 in
    let filename, _ = Authority.issue_simple_roa child ~asid ~prefix ~now () in
    w.live <- (child, filename) :: w.live
  | 1 when w.live <> [] ->
    let ((a, filename) as entry) = pick_live () in
    Authority.revoke_roa a ~filename ~now;
    drop_live entry
  | 2 when w.live <> [] ->
    let ((a, filename) as entry) = pick_live () in
    Authority.stealth_delete_roa a ~filename ~now;
    drop_live entry
  | 3 when w.live <> [] ->
    (* the paper's targeted whack, driven by the grandparent/TA *)
    let ((a, filename) as entry) = pick_live () in
    let plan =
      Rpki_attack.Whack.plan_targeted ~manipulator:w.ta
        ~target_issuer:(Authority.name a) ~target_filename:filename
    in
    ignore (Rpki_attack.Whack.execute ~manipulator:w.ta plan ~now);
    drop_live entry
  | _ ->
    (* legitimate maintenance: fresh CRL + manifest (content changes,
       meaning does not) *)
    let _, child = pick_child () in
    Authority.refresh child ~now

let vrp_strings vrps = List.map Vrp.to_string (Vrp.normalize vrps)

let random_routes rng n =
  List.init n (fun _ ->
      let addr =
        if Rpki_util.Rng.bool rng then (30 lsl 24) lor Rpki_util.Rng.bits rng 24
        else Rpki_util.Rng.bits rng 32
      in
      Route.make (V4.Prefix.make addr (12 + Rpki_util.Rng.int rng 13))
        (if Rpki_util.Rng.bool rng then 1000 + Rpki_util.Rng.int rng 500
         else 2000 + Rpki_util.Rng.int rng 1000))

(* The property: run one RP incrementally across ticks, mutating the
   universe between ticks; at every tick a from-scratch RP must agree. *)
let incremental_equiv seed =
  let w = build_world seed in
  let rng = Rpki_util.Rng.create (seed * 31) in
  let tals = [ Relying_party.tal_of_authority w.ta ] in
  let rp = Relying_party.create ~name:"inc" ~asn:1 ~tals () in
  let cache = Rpki_rtr.Session.create_cache () in
  let router = Rpki_rtr.Session.create_router () in
  let prev = ref [] in
  let ticks = 4 in
  for now = 1 to ticks do
    if now > 1 then
      for _ = 1 to 1 + Rpki_util.Rng.int rng 2 do
        mutate w rng ~now
      done;
    let inc = Relying_party.sync rp ~now ~universe:w.universe () in
    let scratch_rp = Relying_party.create ~name:"scratch" ~asn:1 ~tals () in
    let scratch = Relying_party.sync scratch_rp ~now ~universe:w.universe () in
    (* same VRP set *)
    if vrp_strings inc.Relying_party.vrps <> vrp_strings scratch.Relying_party.vrps then
      QCheck.Test.fail_reportf "seed %d tick %d: VRP sets diverge\n  inc:     %s\n  scratch: %s"
        seed now
        (String.concat " " (vrp_strings inc.Relying_party.vrps))
        (String.concat " " (vrp_strings scratch.Relying_party.vrps));
    (* the reported diff really is the step from the previous set *)
    if
      vrp_strings (Vrp.apply_diff !prev inc.Relying_party.diff)
      <> vrp_strings inc.Relying_party.vrps
    then QCheck.Test.fail_reportf "seed %d tick %d: diff does not replay the step" seed now;
    prev := Vrp.normalize inc.Relying_party.vrps;
    (* same classification verdicts from the patched index *)
    List.iter
      (fun route ->
        let a = Origin_validation.classify inc.Relying_party.index route in
        let b = Origin_validation.classify scratch.Relying_party.index route in
        if a <> b then
          QCheck.Test.fail_reportf "seed %d tick %d: %s classifies %s (inc) vs %s (scratch)"
            seed now (Route.to_string route)
            (Origin_validation.state_to_string a)
            (Origin_validation.state_to_string b))
      (random_routes rng 32);
    (* the RTR cache fed only serial deltas tracks the same set, and a
       router following it converges to it *)
    Rpki_rtr.Session.publish_diff cache inc.Relying_party.diff;
    let got = Rpki_rtr.Session.synchronize router cache in
    if vrp_strings got <> vrp_strings inc.Relying_party.vrps then
      QCheck.Test.fail_reportf "seed %d tick %d: router diverged from RP" seed now;
    if Rpki_rtr.Session.router_serial router <> Rpki_rtr.Session.cache_serial cache then
      QCheck.Test.fail_reportf "seed %d tick %d: router serial lags cache" seed now
  done;
  true

let prop_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10 ~name:"incremental sync == from-scratch sync"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
       incremental_equiv)

(* The transport refactor must be invisible when the network is perfect: an
   RP syncing through an explicit zero-latency fault-free transport under
   the default fetch policy is bit-for-bit the PR-1 RP — same VRPs, same
   verdicts, same router convergence — and its transport accounting is
   inert (every point live, first attempt, zero time, zero staleness). *)
let transport_equiv seed =
  let w = build_world seed in
  let rng = Rpki_util.Rng.create (seed * 17) in
  let tals = [ Relying_party.tal_of_authority w.ta ] in
  let rp = Relying_party.create ~name:"inc-tr" ~asn:1 ~tals () in
  let transport = Transport.instant () in
  let cache = Rpki_rtr.Session.create_cache () in
  let router = Rpki_rtr.Session.create_router () in
  let ticks = 4 in
  for now = 1 to ticks do
    if now > 1 then
      for _ = 1 to 1 + Rpki_util.Rng.int rng 2 do
        mutate w rng ~now
      done;
    let inc =
      Relying_party.sync rp ~now ~universe:w.universe ~transport
        ~policy:Relying_party.default_policy ()
    in
    (* the reference runs the compatibility path: no transport given *)
    let scratch_rp = Relying_party.create ~name:"scratch" ~asn:1 ~tals () in
    let scratch = Relying_party.sync scratch_rp ~now ~universe:w.universe () in
    if vrp_strings inc.Relying_party.vrps <> vrp_strings scratch.Relying_party.vrps then
      QCheck.Test.fail_reportf
        "seed %d tick %d: transported RP diverges from scratch\n  inc:     %s\n  scratch: %s"
        seed now
        (String.concat " " (vrp_strings inc.Relying_party.vrps))
        (String.concat " " (vrp_strings scratch.Relying_party.vrps));
    if inc.Relying_party.sync_elapsed <> 0 then
      QCheck.Test.fail_reportf "seed %d tick %d: instant transport spent %d ticks" seed now
        inc.Relying_party.sync_elapsed;
    if inc.Relying_party.budget_exhausted then
      QCheck.Test.fail_reportf "seed %d tick %d: budget exhausted on instant transport" seed now;
    if Relying_party.max_data_age inc <> 0 then
      QCheck.Test.fail_reportf "seed %d tick %d: staleness on fault-free transport" seed now;
    List.iter
      (fun (tr : Relying_party.transfer) ->
        if
          tr.Relying_party.t_status <> Relying_party.Fetched
          || tr.Relying_party.t_channel <> "live"
          || tr.Relying_party.t_attempts <> 1
        then
          QCheck.Test.fail_reportf "seed %d tick %d: %s not a clean live fetch" seed now
            tr.Relying_party.t_uri)
      inc.Relying_party.transfers;
    List.iter
      (fun route ->
        if
          Origin_validation.classify inc.Relying_party.index route
          <> Origin_validation.classify scratch.Relying_party.index route
        then
          QCheck.Test.fail_reportf "seed %d tick %d: verdicts diverge on %s" seed now
            (Route.to_string route))
      (random_routes rng 32);
    Rpki_rtr.Session.publish_diff cache inc.Relying_party.diff;
    let got = Rpki_rtr.Session.synchronize router cache in
    if vrp_strings got <> vrp_strings inc.Relying_party.vrps then
      QCheck.Test.fail_reportf "seed %d tick %d: router diverged from transported RP" seed now;
    if Rpki_rtr.Session.router_serial router <> Rpki_rtr.Session.cache_serial cache then
      QCheck.Test.fail_reportf "seed %d tick %d: router serial lags cache" seed now
  done;
  true

let prop_transport_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10 ~name:"zero-latency fault-free transport == PR-1 sync"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
       transport_equiv)

(* The 10k-VRP case: few CAs, each with multi-entry ROAs, so the VRP
   population is realistic while RSA key generation stays cheap.  After a
   warm tick touching 2 of 5 points, the untouched points must be replayed
   from the memo and the result must still match a from-scratch sync. *)
let test_equivalence_10k () =
  let universe = Universe.create () in
  let ta =
    Authority.create_trust_anchor ~name:"TA"
      ~resources:(Resources.of_v4_strings [ "30.0.0.0/8" ])
      ~uri:"rsync://ta/repo" ~addr:(V4.addr_of_string_exn "198.51.100.1")
      ~host_asn:1 ~now:0 ~universe ()
  in
  let n_children = 4 and roas_per_child = 5 and entries_per_roa = 500 in
  let children =
    Array.init n_children (fun c ->
        let base = (30 lsl 24) lor (c lsl 22) in
        Authority.create_child ta ~name:(Printf.sprintf "C%d" c)
          ~resources:(Resources.make ~v4:(V4.Set.of_prefix (V4.Prefix.make base 10)) ())
          ~uri:(Printf.sprintf "rsync://c%d/repo" c)
          ~addr:(base + 1) ~host_asn:(100 + c) ~now:0 ~universe ())
  in
  let filenames = ref [] in
  Array.iteri
    (fun c child ->
      let base = (30 lsl 24) lor (c lsl 22) in
      for r = 0 to roas_per_child - 1 do
        let entries =
          List.init entries_per_roa (fun i ->
              let slot = (r * entries_per_roa) + i in
              Roa.entry (V4.Prefix.make (base lor (slot lsl 8)) 24))
        in
        let filename, _ =
          Authority.issue_roa child ~asid:(1000 + (c * 10) + r) ~v4_entries:entries ~now:0 ()
        in
        filenames := (child, filename) :: !filenames
      done)
    children;
  let tals = [ Relying_party.tal_of_authority ta ] in
  let rp = Relying_party.create ~name:"inc" ~asn:1 ~tals () in
  let cold = Relying_party.sync rp ~now:1 ~universe () in
  Alcotest.(check int) "10k VRPs" (n_children * roas_per_child * entries_per_roa)
    (List.length cold.Relying_party.vrps);
  (* warm tick: one new ROA at child 0, one revocation at child 1 *)
  ignore
    (Authority.issue_simple_roa children.(0)
       ~asid:9999
       ~prefix:(V4.Prefix.make ((30 lsl 24) lor 0b1111111111 lsl 8) 24)
       ~now:2 ());
  let victim =
    List.find (fun (a, _) -> Authority.name a = "C1") !filenames |> snd
  in
  Authority.revoke_roa children.(1) ~filename:victim ~now:2;
  let warm = Relying_party.sync rp ~now:2 ~universe () in
  let scratch_rp = Relying_party.create ~name:"scratch" ~asn:1 ~tals () in
  let scratch = Relying_party.sync scratch_rp ~now:2 ~universe () in
  Alcotest.(check (list string)) "warm == scratch"
    (vrp_strings scratch.Relying_party.vrps)
    (vrp_strings warm.Relying_party.vrps);
  Alcotest.(check bool) "untouched points replayed from memo" true
    (warm.Relying_party.points_reused >= 3);
  Alcotest.(check int) "only the touched points revalidated" 2
    warm.Relying_party.points_revalidated;
  Alcotest.(check int) "diff removes the revoked ROA's entries" entries_per_roa
    (List.length warm.Relying_party.diff.Vrp.removed);
  Alcotest.(check int) "diff adds the new ROA" 1
    (List.length warm.Relying_party.diff.Vrp.added);
  let rng = Rpki_util.Rng.create 97 in
  List.iter
    (fun route ->
      Alcotest.(check string)
        (Printf.sprintf "classify %s" (Route.to_string route))
        (Origin_validation.state_to_string
           (Origin_validation.classify scratch.Relying_party.index route))
        (Origin_validation.state_to_string
           (Origin_validation.classify warm.Relying_party.index route)))
    (random_routes rng 64)

let () =
  Alcotest.run "incremental"
    [ ( "equivalence",
        [ prop_equivalence; prop_transport_equivalence;
          Alcotest.test_case "10k VRPs, warm tick" `Quick test_equivalence_10k ] )
    ]
