(* Gossip overlays and Byzantine vantages.

   Structure: the overlay generators are deterministic in (spec, seed,
   names, round) and always connect the mesh (QCheck over seeds); a round
   over ANY connected overlay eventually raises the same Fork keys as the
   full mesh (observational property); the round-level STH memo collapses
   O(n²) head verifications to O(n) (counted against the global RSA
   verifier); and an equivocating traitor eclipses the victim exactly when
   it owns every honest edge — while a mirrored shadow served to a victim
   with honest pre-attack history betrays itself. *)

open Rpki_repo
open Rpki_sim

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 5000)

let names_of n = List.init n (Printf.sprintf "v%02d")

let prop c name p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:c ~name seed_gen p)

(* --- overlay generators: deterministic, connected, right-sized --- *)

let prop_k_regular seed =
  let n = 4 + (seed mod 37) in
  let names = names_of n in
  List.iter
    (fun k ->
      let pulls = Gossip.Overlay.pulls (K_regular k) ~seed ~round:1 names in
      let again = Gossip.Overlay.pulls (K_regular k) ~seed ~round:7 names in
      if pulls <> again then
        QCheck.Test.fail_reportf "k:%d not round-invariant (seed %d)" k seed;
      if not (Gossip.Overlay.connected pulls ~names) then
        QCheck.Test.fail_reportf "k:%d disconnected at n=%d (seed %d)" k n seed;
      if k mod 2 = 0 && k < n && List.length pulls <> n * k then
        QCheck.Test.fail_reportf "k:%d at n=%d gave %d pulls, wanted %d (seed %d)" k n
          (List.length pulls) (n * k) seed)
    [ 2; 3; 4 ];
  true

let prop_star_and_random seed =
  let n = 3 + (seed mod 29) in
  let names = names_of n in
  let h = 1 + (seed mod 3) in
  let star = Gossip.Overlay.pulls (Star h) ~seed ~round:2 names in
  if not (Gossip.Overlay.connected star ~names) then
    QCheck.Test.fail_reportf "star:%d disconnected at n=%d (seed %d)" h n seed;
  let k = min 2 (n - 1) in
  let r1 = Gossip.Overlay.pulls (Random_peers k) ~seed ~round:3 names in
  let r1' = Gossip.Overlay.pulls (Random_peers k) ~seed ~round:3 names in
  if r1 <> r1' then QCheck.Test.fail_reportf "random:%d not deterministic (seed %d)" k seed;
  List.iter
    (fun v ->
      let deg = List.length (List.filter (fun (r, _) -> String.equal r v) r1) in
      if deg <> k then
        QCheck.Test.fail_reportf "random:%d receiver %s pulls %d peers (seed %d)" k v deg
          seed)
    names;
  true

let test_overlay_strings () =
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Gossip.Overlay.to_string o) true
        (Gossip.Overlay.of_string (Gossip.Overlay.to_string o) = Some o))
    [ Gossip.Overlay.Full_mesh; K_regular 4; Star 2; Random_peers 3 ];
  Alcotest.(check bool) "garbage" true (Gossip.Overlay.of_string "k:zero" = None);
  Alcotest.(check bool) "degree 0" true (Gossip.Overlay.of_string "k:0" = None)

(* --- the round-level STH memo: O(n) head verifications a round --- *)

let test_verify_count_drop () =
  let monitors = 7 in
  let n = monitors + 1 in
  (* park the loop's own gossip; drive rounds by hand *)
  let sv = Loop.split_view_scenario ~monitors ~gossip_period:99 () in
  let t = sv.Loop.sv_sim in
  let g = Option.get (Loop.gossip_mesh t) in
  ignore (Loop.step t ~now:1);
  ignore (Gossip.round g ~now:1);
  (* warm round: every key exists, every log is stable *)
  ignore (Loop.step t ~now:2);
  let before = Rpki_crypto.Rsa.verification_count () in
  let rep = Gossip.round g ~now:2 in
  let delta = Rpki_crypto.Rsa.verification_count () - before in
  Alcotest.(check int) "full mesh runs n(n-1) pulls" (n * (n - 1)) rep.Gossip.r_pulls;
  (* one signature check per served log, not one per edge *)
  Alcotest.(check int) "RSA verifies = n" n delta;
  Alcotest.(check int) "report counts them" n rep.Gossip.r_verifies;
  Alcotest.(check int) "rest answered by the memo" ((n * (n - 1)) - n)
    rep.Gossip.r_verifies_saved

let test_pulls_skipped () =
  let monitors = 3 in
  let sv = Loop.split_view_scenario ~monitors ~gossip_period:99 ~overlay:(K_regular 2) () in
  let t = sv.Loop.sv_sim in
  let g = Option.get (Loop.gossip_mesh t) in
  ignore (Loop.step t ~now:1);
  let quiet = List.hd sv.Loop.sv_monitors in
  Gossip.set_server g ~name:quiet (fun ~receiver:_ -> (Loop.vantage t ~name:quiet).Gossip.v_rp);
  let rep = Gossip.round g ~now:1 in
  (* a Byzantine receiver pulls nothing: its out-edges are skipped, not run *)
  Alcotest.(check int) "skipped = the traitor's out-degree" 2 rep.Gossip.r_skipped;
  Alcotest.(check int) "the rest ran" ((4 * 2) - 2) rep.Gossip.r_pulls;
  Gossip.clear_server g ~name:quiet

(* --- observational equivalence: any connected overlay, same forks --- *)

let fork_keys g =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Gossip.Fork { fork_uri; fork_serial; _ } -> Some (fork_uri, fork_serial)
         | _ -> None)
       (Gossip.alarms g))

let run_split ~overlay ~overlay_seed =
  let sv = Loop.split_view_scenario ~monitors:5 ~gossip_period:1 ~overlay ~overlay_seed () in
  let t = sv.Loop.sv_sim in
  let atk =
    Rpki_attack.Split_view.plan ~authority:sv.Loop.sv_model.Model.continental
      ~target_filename:sv.Loop.sv_target_filename ~stealth:Rpki_attack.Split_view.Stealthy ()
  in
  for now = 1 to 6 do
    if now = 3 then Rpki_attack.Split_view.apply atk (Loop.transport t);
    ignore (Loop.step t ~now)
  done;
  Option.get (Loop.gossip_mesh t)

let prop_observational seed =
  let mesh = run_split ~overlay:Gossip.Overlay.Full_mesh ~overlay_seed:seed in
  let ring = run_split ~overlay:(K_regular 2) ~overlay_seed:seed in
  let mk = fork_keys mesh and rk = fork_keys ring in
  if mk = [] then QCheck.Test.fail_reportf "full mesh missed the fork (seed %d)" seed;
  if mk <> rk then
    QCheck.Test.fail_reportf "k:2 fork keys differ from the mesh (seed %d)" seed;
  (* the sparse overlay's evidence is as portable as the mesh's *)
  let key_of g name =
    List.find_map
      (fun (v : Gossip.vantage) ->
        if String.equal v.Gossip.v_name name then
          Some (Relying_party.transparency_key v.Gossip.v_rp)
        else None)
      (Gossip.vantages g)
  in
  List.iter
    (fun a ->
      if Gossip.is_fork a && not (Gossip.verify_fork ~key_of:(key_of ring) a) then
        QCheck.Test.fail_reportf "k:2 fork evidence failed re-verification (seed %d)" seed)
    (Gossip.alarms ring);
  true

(* --- Byzantine equivocators ------------------------------------------ *)

(* A scenario with the fork running from the victim's first sync, the given
   monitors turned Byzantine (mirroring shadows), under the given overlay. *)
let run_byzantine ~overlay ~byz ~attack_at ~ticks =
  let sv = Loop.split_view_scenario ~monitors:3 ~gossip_period:1 ~overlay () in
  let t = sv.Loop.sv_sim in
  let model = sv.Loop.sv_model in
  let g = Option.get (Loop.gossip_mesh t) in
  let atk =
    Rpki_attack.Split_view.plan ~authority:model.Model.continental
      ~target_filename:sv.Loop.sv_target_filename ~stealth:Rpki_attack.Split_view.Stealthy ()
  in
  let eqs =
    List.map
      (fun name ->
        let v = Loop.vantage t ~name in
        let shadow = Model.relying_party ~name ~asn:(Relying_party.asn v.Gossip.v_rp) model in
        let eq =
          Rpki_attack.Equivocator.plan ~universe:model.Model.universe ~name ~shadow
            ~fork_to:(fun r -> String.equal r "victim-rp") ()
        in
        Rpki_attack.Equivocator.apply eq g;
        eq)
      (byz sv)
  in
  for now = 1 to ticks do
    if now = attack_at then begin
      Rpki_attack.Split_view.apply atk (Loop.transport t);
      List.iter
        (fun eq -> Rpki_attack.Split_view.apply atk (Rpki_attack.Equivocator.shadow_transport eq))
        eqs
    end;
    ignore (Loop.step t ~now)
  done;
  (t, g, eqs)

let hub_of sv = [ List.nth sv.Loop.sv_monitors (List.length sv.Loop.sv_monitors - 1) ]

let test_equivocator_eclipse () =
  (* star:1 with a Byzantine hub: nobody honest ever examines the victim's
     log, the hub mirrors the victim's fork back at it — total eclipse *)
  let t, g, eqs =
    run_byzantine ~overlay:(Star 1) ~byz:hub_of ~attack_at:1 ~ticks:5
  in
  Alcotest.(check bool) "no detection" true (Loop.first_fork_tick t = None);
  Alcotest.(check bool) "no alarms at all" true (Gossip.alarms g = []);
  let eq = List.hd eqs in
  Alcotest.(check bool) "the victim was fed the shadow" true
    (Rpki_attack.Equivocator.served_forked eq >= 4);
  Alcotest.(check bool) "honest spokes got the honest log" true
    (Rpki_attack.Equivocator.served_honest eq >= 4)

let test_equivocator_honest_neighbor () =
  (* full mesh, one traitor: any honest monitor pulling the victim sees the
     fork on the first round *)
  let t, _, _ =
    run_byzantine ~overlay:Gossip.Overlay.Full_mesh ~byz:hub_of ~attack_at:1 ~ticks:3
  in
  Alcotest.(check (option int)) "caught on round one" (Some 1) (Loop.first_fork_tick t)

let test_mirror_self_betrayal () =
  (* mid-history fork: the victim synced honestly first, so its own
     first-seen record conflicts with the mirrored shadow's delta and the
     victim raises the Fork itself — equivocation is self-defeating
     against a victim that holds honest history *)
  let t, _, _ = run_byzantine ~overlay:(Star 1) ~byz:hub_of ~attack_at:3 ~ticks:5 in
  Alcotest.(check (option int)) "the victim betrays the mirror" (Some 3)
    (Loop.first_fork_tick t)

let () =
  Alcotest.run "gossip"
    [ ( "overlay",
        [ Alcotest.test_case "spec strings round-trip" `Quick test_overlay_strings;
          prop 40 "k-regular: connected, deterministic, O(n·k)" prop_k_regular;
          prop 40 "star connected; random sample deterministic" prop_star_and_random ] );
      ( "caching",
        [ Alcotest.test_case "STH memo: n verifies for n(n-1) pulls" `Quick
            test_verify_count_drop;
          Alcotest.test_case "r_pulls / r_skipped accounting" `Quick test_pulls_skipped ] );
      ( "observational",
        [ prop 4 "k:2 raises the mesh's fork keys, evidence portable" prop_observational ] );
      ( "byzantine",
        [ Alcotest.test_case "eclipsed victim: no honest edge, no alarm" `Quick
            test_equivocator_eclipse;
          Alcotest.test_case "one honest neighbor suffices" `Quick
            test_equivocator_honest_neighbor;
          Alcotest.test_case "mirrored shadow betrayed by honest history" `Quick
            test_mirror_self_betrayal ] ) ]
