(* The persistence layer, tested as invariants:

   - the checksummed snapshot codec round-trips arbitrary record batches
     bit-identically, and NO single-byte corruption of an encoded snapshot
     is ever silently accepted — every flip decodes to a typed error;
   - the generation-numbered store survives its simulated-disk fault
     envelope (torn write, partial flush, bit flip, dropped rename) by
     degrading to an explicit [load_error], never by serving bad bytes;
   - a relying party's saved state restores bit-identically: saving the
     restored instance reproduces the same records. *)

open Rpki_persist
open Rpki_repo

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 5000)

(* A deterministic batch of records for a seed: arbitrary kinds and binary
   payloads, empty payloads included. *)
let snapshot_of_seed seed =
  let rng = Rpki_util.Rng.create seed in
  let n = Rpki_util.Rng.int rng 12 in
  let records =
    List.init n (fun i ->
        let len = Rpki_util.Rng.int rng 64 in
        let payload = String.init len (fun _ -> Char.chr (Rpki_util.Rng.int rng 256)) in
        { Codec.r_kind = Printf.sprintf "kind-%d-%d" seed i; r_payload = payload })
  in
  { Codec.s_generation = 1 + Rpki_util.Rng.int rng 1000;
    s_saved_at = Rpki_util.Rng.int rng 1000; s_records = records }

let flip s i =
  let b = Bytes.of_string s in
  let i = i mod Bytes.length b in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (i mod 8) lor 1)));
  Bytes.to_string b

(* --- codec properties --- *)

let prop_roundtrip seed =
  let snap = snapshot_of_seed seed in
  match Codec.decode (Codec.encode snap) with
  | Ok got -> got = snap
  | Error _ -> false

(* Encoding is a function of the value alone — two encodes are identical
   bytes (what makes save/compare/restore deterministic). *)
let prop_deterministic seed =
  let snap = snapshot_of_seed seed in
  String.equal (Codec.encode snap) (Codec.encode snap)

(* Any single corrupted byte is detected: decode returns a typed error.
   Silently returning a snapshot — identical or not — would be the failure
   mode a rollback adversary (or plain bit rot) needs. *)
let prop_corruption_detected seed =
  let snap = snapshot_of_seed seed in
  let bytes = Codec.encode snap in
  let rng = Rpki_util.Rng.create (seed * 7 + 1) in
  List.for_all
    (fun _ ->
      let i = Rpki_util.Rng.int rng (String.length bytes) in
      match Codec.decode (flip bytes i) with
      | Error (Codec.Bad_magic _ | Codec.Checksum_mismatch _ | Codec.Malformed _) -> true
      | Ok _ -> false)
    (List.init 24 Fun.id)

(* The outer checksum must cover the generation and timestamp, not just the
   body: a tampered generation with an intact body is still a rejection. *)
let test_generation_covered () =
  let snap =
    { Codec.s_generation = 3; s_saved_at = 9;
      s_records = [ { Codec.r_kind = "k"; r_payload = "hello" } ] }
  in
  let ok = Codec.encode snap in
  let forged = Codec.encode { snap with Codec.s_generation = 4 } in
  (* splice the forged prefix onto the honest digest by decoding both and
     checking they differ in the bytes before the digest *)
  Alcotest.(check bool) "different generations encode differently" false
    (String.equal ok forged);
  match Codec.decode ok with
  | Ok got -> Alcotest.(check int) "generation survives" 3 got.Codec.s_generation
  | Error e -> Alcotest.fail (Codec.error_to_string e)

(* --- store and fault envelope --- *)

let records tag =
  [ { Codec.r_kind = "meta"; r_payload = tag };
    { Codec.r_kind = "data"; r_payload = String.make 257 'x' } ]

let test_store_roundtrip () =
  let disk = Disk.create () in
  let store = Store.create disk ~name:"rp" in
  Alcotest.(check bool) "empty store: no snapshot" true
    (Store.load store = Error Store.No_snapshot);
  let g1 = Store.save store ~now:5 (records "one") in
  Alcotest.(check int) "first generation" 1 g1;
  let g2 = Store.save store ~now:6 (records "two") in
  Alcotest.(check int) "second generation" 2 g2;
  Alcotest.(check int) "marker follows" 2 (Store.generation store);
  (match Store.load store with
  | Ok snap ->
    Alcotest.(check int) "loaded generation" 2 snap.Codec.s_generation;
    Alcotest.(check int) "loaded timestamp" 6 snap.Codec.s_saved_at;
    Alcotest.(check bool) "latest records" true (snap.Codec.s_records = records "two")
  | Error e -> Alcotest.fail (Store.load_error_to_string e));
  Store.wipe store;
  Alcotest.(check bool) "wiped store: no snapshot" true
    (Store.load store = Error Store.No_snapshot)

(* Every injected disk fault on the *last* save degrades to an explicit
   typed error — and never crashes, and never silently serves the corrupt
   generation as good. *)
let test_fault_envelope () =
  List.iter
    (fun fault ->
      let disk = Disk.create () in
      let store = Store.create disk ~name:"rp" in
      ignore (Store.save store ~now:1 (records "good"));
      Disk.inject disk fault;
      ignore (Store.save store ~now:2 (records "doomed"));
      Alcotest.(check bool)
        (Printf.sprintf "%s fired" (Disk.fault_to_string fault))
        true
        (List.mem fault (Disk.fired disk));
      match (fault, Store.load store) with
      | Disk.Drop_rename, Error (Store.Stale { snap_generation; marker }) ->
        (* the data rename was lost: the marker ran ahead of the snapshot *)
        Alcotest.(check int) "stale snapshot generation" 1 snap_generation;
        Alcotest.(check int) "marker ahead" 2 marker
      | (Disk.Torn_write | Disk.Partial_flush | Disk.Bit_flip _), Error (Store.Corrupt _) ->
        ()
      | _, got ->
        Alcotest.fail
          (Printf.sprintf "%s: expected an explicit degraded load, got %s"
             (Disk.fault_to_string fault)
             (match got with
             | Ok _ -> "Ok"
             | Error e -> Store.load_error_to_string e)))
    [ Disk.Torn_write; Disk.Partial_flush; Disk.Bit_flip 54321; Disk.Drop_rename ]

(* --- relying-party snapshots --- *)

let synced_rp () =
  let m = Model.build () in
  let rp = Model.relying_party ~name:"persist-rp" m in
  ignore (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ());
  Relying_party.note_peer_head rp ~peer:"peer-a"
    (Rpki_transparency.Log.head (Relying_party.transparency_log rp) ~at:1);
  (m, rp)

let saved_records store =
  match Store.load store with
  | Ok snap -> snap.Codec.s_records
  | Error e -> Alcotest.fail (Store.load_error_to_string e)

let test_rp_save_restore_bit_identical () =
  let m, rp = synced_rp () in
  let disk = Disk.create () in
  let store = Store.create disk ~name:"persist-rp" in
  ignore (Relying_party.save rp ~now:2 ~rtr_serial:7 store);
  let original = saved_records store in
  let fresh =
    Relying_party.create ~name:"persist-rp" ~asn:Relying_party.(asn rp)
      ~tals:[ Relying_party.tal_of_authority m.Model.arin ] ~log_epoch:1 ()
  in
  (match Relying_party.restore fresh store with
  | Relying_party.Recovered { rc_generation; rc_saved_at; rc_rtr_serial } ->
    Alcotest.(check int) "generation" 1 rc_generation;
    Alcotest.(check int) "saved_at" 2 rc_saved_at;
    Alcotest.(check int) "rtr serial" 7 rc_rtr_serial
  | Relying_party.Recovered_fresh why ->
    Alcotest.fail (Relying_party.fresh_reason_to_string why));
  (* the restore overrode the pessimistic fresh epoch with the persisted one *)
  Alcotest.(check int) "epoch restored" (Relying_party.log_epoch rp)
    (Relying_party.log_epoch fresh);
  Alcotest.(check bool) "VRPs restored" true
    (Relying_party.vrps fresh = Relying_party.vrps rp);
  Alcotest.(check bool) "peer heads restored" true
    (Relying_party.peer_heads fresh = Relying_party.peer_heads rp);
  (* saving the restored instance reproduces the exact same records — the
     persisted state is bit-identical through a save/restore cycle *)
  ignore (Relying_party.save fresh ~now:2 ~rtr_serial:7 store);
  Alcotest.(check bool) "re-saved records identical" true
    (saved_records store = original)

(* Any single-byte corruption of a real relying-party snapshot is caught by
   restore as a typed fresh-start, never a crash, never a partial trust. *)
let test_rp_corrupt_snapshot_explicit () =
  let m, rp = synced_rp () in
  let disk = Disk.create () in
  let store = Store.create disk ~name:"persist-rp" in
  ignore (Relying_party.save rp ~now:2 store);
  let rng = Rpki_util.Rng.create 97 in
  for _ = 1 to 16 do
    let bytes = Option.get (Disk.read disk ~name:"persist-rp.snap") in
    let i = Rpki_util.Rng.int rng (String.length bytes) in
    Disk.write disk ~name:"persist-rp.snap" (flip bytes i);
    let fresh =
      Relying_party.create ~name:"persist-rp" ~asn:(Relying_party.asn rp)
        ~tals:[ Relying_party.tal_of_authority m.Model.arin ] ~log_epoch:1 ()
    in
    (match Relying_party.restore fresh store with
    | Relying_party.Recovered _ ->
      Alcotest.fail "corrupted snapshot restored as good"
    | Relying_party.Recovered_fresh
        Relying_party.(No_snapshot | Snapshot_stale _) ->
      Alcotest.fail "corruption misreported"
    | Relying_party.Recovered_fresh
        Relying_party.(Snapshot_corrupt _ | Log_inconsistent _) -> ());
    (* the untouched fresh instance keeps its own (bumped) epoch *)
    Disk.write disk ~name:"persist-rp.snap" bytes
  done

(* --- segmented persistence vs the uncompacted reference ----------------

   The endurance refactor's soundness property: under ARBITRARY
   interleavings of churn, incremental (segment) saves, compaction —
   sometimes under a one-shot disk fault — and mid-run crash/restores, a
   relying party restored from the segment chain is indistinguishable from
   one restored from an uncompacted full-snapshot store fed the same
   states: same transparency-log head, same VRP set, same peer heads. *)

let drain_armed_fault disk =
  (* a fault armed for a compaction that never wrote must not leak into the
     next save: fire it against scratch bytes instead *)
  (match Disk.armed disk with
  | None -> ()
  | Some (Disk.Torn_write | Disk.Partial_flush | Disk.Bit_flip _) ->
    Disk.write disk ~name:".scratch" "xx"
  | Some Disk.Drop_rename ->
    Disk.write disk ~name:".scratch" "xx";
    Disk.rename disk ~src:".scratch" ~dst:".scratch");
  Disk.delete disk ~name:".scratch"

let prop_segmented_matches_uncompacted seed =
  let rng = Rpki_util.Rng.create (seed * 13 + 5) in
  let m = Model.build () in
  let rp = ref (Model.relying_party ~name:"seg-rp" m) in
  let tals = [ Relying_party.tal_of_authority m.Model.arin ] in
  let seg_disk = Disk.create () and full_disk = Disk.create () in
  let seg = Store.create seg_disk ~name:"seg-rp" in
  let full = Store.create full_disk ~name:"seg-rp" in
  let faults =
    [| Disk.Torn_write; Disk.Partial_flush; Disk.Bit_flip (seed * 31); Disk.Drop_rename |]
  in
  let restore_or_fail store =
    let fresh =
      Relying_party.create ~name:"seg-rp" ~asn:(Relying_party.asn !rp) ~tals
        ~log_epoch:1 ()
    in
    match Relying_party.restore fresh store with
    | Relying_party.Recovered _ -> fresh
    | Relying_party.Recovered_fresh why ->
      QCheck.Test.fail_reportf "seed %d: restore degraded: %s" seed
        (Relying_party.fresh_reason_to_string why)
  in
  let rounds = 4 + Rpki_util.Rng.int rng 3 in
  for now = 1 to rounds do
    if Rpki_util.Rng.int rng 3 = 0 then Authority.maintain m.Model.arin ~now;
    ignore (Relying_party.sync !rp ~now ~universe:m.Model.universe ());
    ignore (Relying_party.save !rp ~now ~mode:`Auto seg);
    ignore (Relying_party.save !rp ~now ~mode:`Full full);
    match Rpki_util.Rng.int rng 4 with
    | 0 ->
      (* fold the chain, half the time under a one-shot fault: compaction
         must either complete or leave the old chain untouched *)
      if Rpki_util.Rng.int rng 2 = 0 then
        Disk.inject seg_disk faults.(Rpki_util.Rng.int rng 4);
      ignore (Relying_party.compact_store seg ~now);
      drain_armed_fault seg_disk
    | 1 ->
      (* crash and restart: continue from what the segment chain restores *)
      rp := restore_or_fail seg
    | _ -> ()
  done;
  let a = restore_or_fail seg in
  let b = restore_or_fail full in
  let root r =
    Rpki_transparency.Log.encode_head
      (Rpki_transparency.Log.head (Relying_party.transparency_log r) ~at:0)
  in
  if not (String.equal (root a) (root b)) then
    QCheck.Test.fail_reportf "seed %d: log heads diverge" seed;
  if Relying_party.vrps a <> Relying_party.vrps b then
    QCheck.Test.fail_reportf "seed %d: VRP sets diverge" seed;
  if Relying_party.peer_heads a <> Relying_party.peer_heads b then
    QCheck.Test.fail_reportf "seed %d: peer heads diverge" seed;
  true

let prop c n p = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:c ~name:n seed_gen p)

let () =
  Alcotest.run "persist"
    [ ("codec",
       [ prop 100 "snapshots round-trip bit-identically" prop_roundtrip;
         prop 50 "encoding is deterministic" prop_deterministic;
         prop 60 "any single-byte corruption is detected" prop_corruption_detected;
         Alcotest.test_case "checksum covers the generation" `Quick test_generation_covered ]);
      ("store",
       [ Alcotest.test_case "save/load/wipe round-trip" `Quick test_store_roundtrip;
         Alcotest.test_case "fault envelope degrades explicitly" `Quick test_fault_envelope ]);
      ("segment-chain",
       [ prop 8 "segmented+compacted store matches the uncompacted reference"
           prop_segmented_matches_uncompacted ]);
      ("relying-party",
       [ Alcotest.test_case "save/restore is bit-identical" `Quick
           test_rp_save_restore_bit_identical;
         Alcotest.test_case "corrupt snapshots fail closed" `Quick
           test_rp_corrupt_snapshot_explicit ]) ]
