(* Tests for the RPKI-to-Router protocol (RFC 6810). *)

open Rpki_core
open Rpki_rtr
open Rpki_ip

let pdu = Alcotest.testable (fun fmt p -> Format.pp_print_string fmt (Pdu.to_string p)) ( = )

(* --- PDU wire format --- *)

let test_roundtrips () =
  let cases =
    [ Pdu.Serial_notify { session_id = 0x1234; serial = 42 };
      Pdu.Serial_query { session_id = 0xffff; serial = 0 };
      Pdu.Reset_query;
      Pdu.Cache_response { session_id = 7 };
      Pdu.Ipv4_prefix { flags = Pdu.Announce; prefix = V4.p "63.174.16.0/20"; max_len = 24; asn = 17054 };
      Pdu.Ipv4_prefix { flags = Pdu.Withdraw; prefix = V4.p "0.0.0.0/0"; max_len = 0; asn = 0 };
      Pdu.Ipv6_prefix { flags = Pdu.Announce; prefix6 = V6.p "2001:db8::/32"; max_len = 48; asn = 65001 };
      Pdu.End_of_data { session_id = 9; serial = 77 };
      Pdu.Cache_reset;
      Pdu.Error_report { error_code = Pdu.err_corrupt_data; message = "broken" } ]
  in
  List.iter (fun p -> Alcotest.check pdu (Pdu.to_string p) p (Pdu.decode (Pdu.encode p))) cases

let test_wire_layout () =
  (* byte-exact check of one IPv4 prefix PDU against RFC 6810 section 5.6 *)
  let p = Pdu.Ipv4_prefix { flags = Pdu.Announce; prefix = V4.p "10.0.0.0/8"; max_len = 24; asn = 65000 } in
  let b = Pdu.encode p in
  Alcotest.(check int) "length" 20 (String.length b);
  Alcotest.(check int) "version" 0 (Char.code b.[0]);
  Alcotest.(check int) "type" 4 (Char.code b.[1]);
  Alcotest.(check int) "declared length" 20 (Char.code b.[7]);
  Alcotest.(check int) "flags" 1 (Char.code b.[8]);
  Alcotest.(check int) "prefix len" 8 (Char.code b.[9]);
  Alcotest.(check int) "max len" 24 (Char.code b.[10]);
  Alcotest.(check int) "first prefix byte" 10 (Char.code b.[12])

let test_parse_errors () =
  let expect s =
    try
      ignore (Pdu.decode s);
      Alcotest.fail "expected parse error"
    with Pdu.Parse_error _ -> ()
  in
  expect "";
  expect "\x00\x02";
  expect "\x01\x02\x00\x00\x00\x00\x00\x08" (* wrong version *);
  expect "\x00\x63\x00\x00\x00\x00\x00\x08" (* unknown type *);
  expect (Pdu.encode Pdu.Reset_query ^ "junk");
  (* maxlen < prefix len must be rejected *)
  let bad = Bytes.of_string (Pdu.encode (Pdu.Ipv4_prefix { flags = Pdu.Announce; prefix = V4.p "10.0.0.0/24"; max_len = 24; asn = 1 })) in
  Bytes.set bad 10 '\x08';
  expect (Bytes.to_string bad)

let test_decode_all () =
  let stream = Pdu.encode Pdu.Reset_query ^ Pdu.encode Pdu.Cache_reset in
  Alcotest.(check int) "two pdus" 2 (List.length (Pdu.decode_all stream))

(* --- session state machines --- *)

let v1 = Vrp.make ~max_len:24 (V4.p "63.174.16.0/20") 17054
let v2 = Vrp.make (V4.p "63.170.0.0/16") 19429
let v3 = Vrp.make ~max_len:13 (V4.p "63.160.0.0/12") 1239

let test_initial_sync () =
  let cache = Session.create_cache () in
  Session.publish cache [ v1; v2 ];
  let router = Session.create_router () in
  let got = Session.synchronize router cache in
  Alcotest.(check int) "two vrps" 2 (List.length got);
  Alcotest.(check int) "serial" 1 (Session.router_serial router)

let test_incremental_add_remove () =
  let cache = Session.create_cache () in
  Session.publish cache [ v1; v2 ];
  let router = Session.create_router () in
  ignore (Session.synchronize router cache);
  Session.publish cache [ v2; v3 ];
  let got = Session.synchronize router cache in
  Alcotest.(check int) "two vrps" 2 (List.length got);
  Alcotest.(check bool) "v3 in" true (List.exists (Vrp.equal v3) got);
  Alcotest.(check bool) "v1 out" false (List.exists (Vrp.equal v1) got);
  Alcotest.(check int) "serial advanced" 2 (Session.router_serial router)

let test_no_change_no_serial_bump () =
  let cache = Session.create_cache () in
  Session.publish cache [ v1 ];
  Session.publish cache [ v1 ];
  Alcotest.(check int) "serial stable" 1 (Session.cache_serial cache)

let test_history_eviction_forces_reset () =
  let cache = Session.create_cache ~history_limit:4 () in
  let router = Session.create_router () in
  Session.publish cache [ v1 ];
  ignore (Session.synchronize router cache);
  (* push the router's serial out of the retained window *)
  for i = 0 to 9 do
    Session.publish cache [ Vrp.make (V4.Prefix.make ((i + 1) lsl 24) 8) (1000 + i) ]
  done;
  let got = Session.synchronize router cache in
  Alcotest.(check int) "resynced to one vrp" 1 (List.length got);
  Alcotest.(check int) "at latest serial" (Session.cache_serial cache) (Session.router_serial router)

let test_session_mismatch_resets () =
  let cache_a = Session.create_cache ~session_id:1 () in
  let cache_b = Session.create_cache ~session_id:2 () in
  Session.publish cache_a [ v1 ];
  Session.publish cache_b [ v2 ];
  let router = Session.create_router () in
  ignore (Session.synchronize router cache_a);
  (* fail over to a different cache: session ids differ, must resync fully *)
  let got = Session.synchronize router cache_b in
  Alcotest.(check int) "one vrp" 1 (List.length got);
  Alcotest.(check bool) "it's v2" true (Vrp.equal v2 (List.hd got))

let test_notify () =
  let cache = Session.create_cache ~session_id:5 () in
  Session.publish cache [ v1 ];
  match Session.notify cache with
  | Pdu.Serial_notify { session_id; serial } ->
    Alcotest.(check int) "session" 5 session_id;
    Alcotest.(check int) "serial" 1 serial
  | _ -> Alcotest.fail "expected notify"

let test_cache_serves_error_on_garbage () =
  let cache = Session.create_cache () in
  match Pdu.decode_all (Session.serve cache "nonsense") with
  | [ Pdu.Error_report _ ] -> ()
  | _ -> Alcotest.fail "expected error report"

(* property: publishing any sequence of VRP sets, a router that syncs after
   each publish always converges to the cache's current set *)
let prop_converges =
  let arb =
    QCheck.make
      ~print:(fun l -> string_of_int (List.length l))
      QCheck.Gen.(
        list_size (int_bound 8)
          (list_size (int_bound 10)
             (map2
                (fun a asn -> Vrp.make (V4.Prefix.make (abs a mod (1 lsl 32)) 24) (abs asn mod 1000))
                int int)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"router converges to cache state" arb (fun sets ->
         let cache = Session.create_cache () in
         let router = Session.create_router () in
         List.for_all
           (fun vrps ->
             Session.publish cache vrps;
             let got = Session.synchronize router cache in
             let want = List.sort_uniq Vrp.compare vrps in
             List.length got = List.length want && List.for_all2 Vrp.equal got want)
           sets))

let () =
  Alcotest.run "rtr"
    [ ( "pdu",
        [ Alcotest.test_case "roundtrips" `Quick test_roundtrips;
          Alcotest.test_case "wire layout" `Quick test_wire_layout;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "decode_all" `Quick test_decode_all ] );
      ( "session",
        [ Alcotest.test_case "initial sync" `Quick test_initial_sync;
          Alcotest.test_case "incremental" `Quick test_incremental_add_remove;
          Alcotest.test_case "idempotent publish" `Quick test_no_change_no_serial_bump;
          Alcotest.test_case "history eviction" `Quick test_history_eviction_forces_reset;
          Alcotest.test_case "session mismatch" `Quick test_session_mismatch_resets;
          Alcotest.test_case "notify" `Quick test_notify;
          Alcotest.test_case "garbage request" `Quick test_cache_serves_error_on_garbage;
          prop_converges ] ) ]
