(* The transparency log's cryptographic core, tested as invariants: for
   arbitrary append sequences every inclusion and consistency proof
   verifies, and any single tampered bit — in the leaf, the proof, or the
   claimed roots — makes verification fail.  Plus the log layer on top:
   canonical encoding round-trips, per-point dedup, signed heads. *)

open Rpki_transparency
module Sha256 = Rpki_crypto.Sha256

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 5000)

(* A deterministic batch of distinct leaves for a seed. *)
let leaves_of_seed seed =
  let rng = Rpki_util.Rng.create seed in
  let n = 1 + Rpki_util.Rng.int rng 64 in
  List.init n (fun i -> Printf.sprintf "leaf-%d-%d-%d" seed i (Rpki_util.Rng.int rng 1000))

let tree_of leaves =
  let t = Merkle.create () in
  List.iter (fun l -> ignore (Merkle.add t l)) leaves;
  t

(* Flip one bit of byte [i] (mod length). *)
let flip s i =
  let b = Bytes.of_string s in
  let i = i mod Bytes.length b in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

(* --- Merkle unit tests --- *)

let test_empty_and_singleton () =
  let t = Merkle.create () in
  Alcotest.(check string) "empty root = H(\"\")" (Sha256.digest "") (Merkle.root t);
  ignore (Merkle.add t "a");
  Alcotest.(check string) "singleton root = leaf hash" (Merkle.leaf_hash "a") (Merkle.root t);
  ignore (Merkle.add t "b");
  let expect = Sha256.digest_list [ "\x01"; Merkle.leaf_hash "a"; Merkle.leaf_hash "b" ] in
  Alcotest.(check string) "two-leaf root = H(1||l||r)" expect (Merkle.root t)

let test_root_at_is_past_head () =
  let leaves = leaves_of_seed 42 in
  let t = tree_of leaves in
  List.iteri
    (fun i _ ->
      let prefix = tree_of (List.filteri (fun j _ -> j <= i) leaves) in
      Alcotest.(check string)
        (Printf.sprintf "root_at %d" (i + 1))
        (Merkle.root prefix)
        (Merkle.root_at t ~size:(i + 1)))
    leaves

(* --- Merkle properties --- *)

(* Every leaf of every tree has a verifying inclusion proof, under the full
   tree and under every past head covering it. *)
let prop_inclusion seed =
  let leaves = leaves_of_seed seed in
  let t = tree_of leaves in
  let n = Merkle.size t in
  let rng = Rpki_util.Rng.create (seed * 7) in
  List.for_all
    (fun index ->
      let size = index + 1 + Rpki_util.Rng.int rng (n - index) in
      let proof = Merkle.inclusion_proof t ~index ~size in
      Merkle.verify_inclusion ~leaf:(Merkle.leaf t index) ~index ~size
        ~root:(Merkle.root_at t ~size) proof)
    (List.init n (fun i -> i))

(* Every pair of heads of one log is consistency-provable. *)
let prop_consistency seed =
  let t = tree_of (leaves_of_seed seed) in
  let n = Merkle.size t in
  List.for_all
    (fun old_size ->
      let proof = Merkle.consistency_proof t ~old_size ~size:n in
      Merkle.verify_consistency ~old_size ~old_root:(Merkle.root_at t ~size:old_size) ~size:n
        ~root:(Merkle.root t) proof)
    (List.init n (fun i -> i + 1))

(* Tampering with the leaf, any single proof hash, or the root breaks
   inclusion verification. *)
let prop_inclusion_tamper_fails seed =
  let leaves = leaves_of_seed seed in
  let t = tree_of leaves in
  let n = Merkle.size t in
  let rng = Rpki_util.Rng.create (seed * 11) in
  let index = Rpki_util.Rng.int rng n in
  let leaf = Merkle.leaf t index in
  let root = Merkle.root t in
  let proof = Merkle.inclusion_proof t ~index ~size:n in
  let ok tampered_leaf tampered_root tampered_proof =
    Merkle.verify_inclusion ~leaf:tampered_leaf ~index ~size:n ~root:tampered_root
      tampered_proof
  in
  if not (ok leaf root proof) then QCheck.Test.fail_reportf "honest proof rejected (seed %d)" seed;
  if ok (flip leaf (Rpki_util.Rng.int rng 99)) root proof then
    QCheck.Test.fail_reportf "tampered leaf accepted (seed %d)" seed;
  if ok leaf (flip root (Rpki_util.Rng.int rng 99)) proof then
    QCheck.Test.fail_reportf "tampered root accepted (seed %d)" seed;
  List.iteri
    (fun i _ ->
      let tampered = List.mapi (fun j h -> if i = j then flip h 5 else h) proof in
      if ok leaf root tampered then
        QCheck.Test.fail_reportf "tampered proof hash %d accepted (seed %d)" i seed)
    proof;
  true

(* A forked history — one leaf changed below the old head — is not
   consistency-provable against the honest old root. *)
let prop_consistency_tamper_fails seed =
  let leaves = leaves_of_seed seed in
  let t = tree_of leaves in
  let n = Merkle.size t in
  let rng = Rpki_util.Rng.create (seed * 13) in
  let old_size = 1 + Rpki_util.Rng.int rng n in
  let old_root = Merkle.root_at t ~size:old_size in
  let proof = Merkle.consistency_proof t ~old_size ~size:n in
  let victim = Rpki_util.Rng.int rng old_size in
  let forked = tree_of (List.mapi (fun i l -> if i = victim then flip l 3 else l) leaves) in
  let forked_proof = Merkle.consistency_proof forked ~old_size ~size:n in
  if
    Merkle.verify_consistency ~old_size ~old_root ~size:n ~root:(Merkle.root forked)
      forked_proof
  then QCheck.Test.fail_reportf "forked history passed consistency (seed %d)" seed;
  if not (Merkle.verify_consistency ~old_size ~old_root ~size:n ~root:(Merkle.root t) proof)
  then QCheck.Test.fail_reportf "honest consistency rejected (seed %d)" seed;
  true

(* --- Log layer --- *)

let obs ?(at = 1) ?(serial = 6) ?(uri = "rsync://a/repo") tag =
  { Log.ob_uri = uri; ob_serial = serial; ob_manifest_hash = Sha256.digest ("m" ^ tag);
    ob_vrp_hash = Sha256.digest ("v" ^ tag); ob_snapshot_fp = Sha256.digest ("f" ^ tag);
    ob_at = at }

let prop_observation_roundtrip seed =
  let rng = Rpki_util.Rng.create seed in
  let ob =
    obs
      ~at:(Rpki_util.Rng.int rng 1000)
      ~serial:(Rpki_util.Rng.int rng 1000)
      ~uri:(Printf.sprintf "rsync://host%d/repo:with\nodd\x00chars" seed)
      (string_of_int (Rpki_util.Rng.int rng 100000))
  in
  match Log.decode_observation (Log.encode_observation ob) with
  | Some ob' -> ob = ob'
  | None -> false

let test_append_dedup () =
  let l = Log.create ~log_id:"rp0" in
  (match Log.append l (obs "x") with
  | `Appended 0 -> ()
  | _ -> Alcotest.fail "first append");
  (* same state re-observed later: deduped *)
  (match Log.append l (obs ~at:9 "x") with
  | `Unchanged -> ()
  | _ -> Alcotest.fail "re-observation must dedup");
  (* changed state at the same serial: appended (the fork primitive) *)
  (match Log.append l (obs ~at:9 "y") with
  | `Appended 1 -> ()
  | _ -> Alcotest.fail "changed state must append");
  Alcotest.(check int) "size" 2 (Log.size l);
  (* find returns the first record under the conflict key *)
  match Log.find l ~uri:"rsync://a/repo" ~serial:6 with
  | Some (0, ob) -> Alcotest.(check int) "first at" 1 ob.Log.ob_at
  | _ -> Alcotest.fail "find"

let test_signed_head () =
  let l = Log.create ~log_id:"rp0" in
  ignore (Log.append l (obs "x"));
  let rng = Rpki_crypto.Drbg.to_rng (Rpki_crypto.Drbg.create ~seed:"test-sth") in
  let kp = Rpki_crypto.Rsa.generate ~bits:512 rng in
  let sth = Log.sign_head ~key:kp.Rpki_crypto.Rsa.private_ (Log.head l ~at:3) in
  Alcotest.(check bool) "signature verifies" true
    (Log.verify_head ~key:kp.Rpki_crypto.Rsa.public sth);
  let bad = { sth with Log.sh_sig = flip sth.Log.sh_sig 4 } in
  Alcotest.(check bool) "tampered signature fails" false
    (Log.verify_head ~key:kp.Rpki_crypto.Rsa.public bad);
  let forged =
    { sth with Log.sh_head = { sth.Log.sh_head with Log.h_size = 99 } }
  in
  Alcotest.(check bool) "tampered head fails" false
    (Log.verify_head ~key:kp.Rpki_crypto.Rsa.public forged)

let test_head_consistency_across_appends () =
  let l = Log.create ~log_id:"rp0" in
  let heads = ref [] in
  List.iter
    (fun i ->
      ignore (Log.append l (obs ~serial:i (string_of_int i)));
      heads := Log.head l ~at:i :: !heads)
    [ 1; 2; 3; 4; 5; 6; 7 ];
  let heads = List.rev !heads in
  let last = List.nth heads (List.length heads - 1) in
  List.iter
    (fun (old_head : Log.head) ->
      let proof = Log.consistency_proof l ~old_size:old_head.Log.h_size ~size:last.Log.h_size in
      Alcotest.(check bool)
        (Printf.sprintf "head %d -> head %d" old_head.Log.h_size last.Log.h_size)
        true
        (Log.verify_head_consistency ~old_head ~new_head:last proof))
    heads;
  (* a head from a different log never checks out *)
  let other = Log.create ~log_id:"rp1" in
  ignore (Log.append other (obs "1"));
  Alcotest.(check bool) "foreign log id rejected" false
    (Log.verify_head_consistency
       ~old_head:(Log.head other ~at:1)
       ~new_head:last
       (Log.consistency_proof l ~old_size:1 ~size:last.Log.h_size))

let test_observation_inclusion_via_head () =
  let l = Log.create ~log_id:"rp0" in
  List.iter (fun i -> ignore (Log.append l (obs ~serial:i (string_of_int i)))) [ 1; 2; 3; 4; 5 ];
  let head = Log.head l ~at:9 in
  List.iteri
    (fun i ob ->
      let proof = Log.inclusion_proof l ~index:i ~size:head.Log.h_size in
      Alcotest.(check bool) (Printf.sprintf "inclusion %d" i) true
        (Log.verify_observation_inclusion ob ~index:i ~head proof);
      let lie = { ob with Log.ob_vrp_hash = Sha256.digest "not-this" } in
      Alcotest.(check bool) (Printf.sprintf "forged observation %d" i) false
        (Log.verify_observation_inclusion lie ~index:i ~head proof))
    (Log.observations l)

let prop c n p = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:c ~name:n seed_gen p)

let () =
  Alcotest.run "transparency"
    [ ("merkle",
       [ Alcotest.test_case "empty and small trees" `Quick test_empty_and_singleton;
         Alcotest.test_case "root_at = past head" `Quick test_root_at_is_past_head;
         prop 30 "inclusion proofs verify for arbitrary appends" prop_inclusion;
         prop 30 "consistency proofs verify for arbitrary heads" prop_consistency;
         prop 30 "any inclusion tamper fails" prop_inclusion_tamper_fails;
         prop 30 "forked history fails consistency" prop_consistency_tamper_fails ]);
      ("log",
       [ prop 50 "observation encoding round-trips" prop_observation_roundtrip;
         Alcotest.test_case "append dedups unchanged states" `Quick test_append_dedup;
         Alcotest.test_case "signed heads" `Quick test_signed_head;
         Alcotest.test_case "head consistency across appends" `Quick
           test_head_consistency_across_appends;
         Alcotest.test_case "observation inclusion via head" `Quick
           test_observation_inclusion_via_head ]) ]
