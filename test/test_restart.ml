(* End-to-end crash/restart under the rollback adversary (the ISSUE's
   acceptance experiment).

   The adversary captures Continental's honest publication-point state at
   t2, the authority revokes (63.174.25.0/24, AS 17054) at t3, the victim
   vantage is killed right after its t5 snapshot and the frozen t2 state is
   replayed to it on restart at t6.  Nothing is forged — the replay is the
   authority's own old bytes — so only *history* can catch it:

   - with persistence, the restarted victim's restored log contradicts the
     replay (serial regression) and the monitors' persisted memory of its
     serial line raises a gossip Rollback, both within one gossip round of
     the restart, with evidence that re-verifies from scratch; the
     resurrected VRP is frozen off the RTR feed by the evidence hold;
   - without persistence, the same run restarts as a fresh-start oracle:
     no alarm, and the revoked VRP is router-visible again — the attack's
     full yield.

   Plus the two cache-loss paths that must never be conflated: flush_cache
   keeps the in-memory transparency log (PR-3 behavior), while a restart
   without a snapshot starts a visibly new log incarnation and peers raise
   Log_reset. *)

open Rpki_core
open Rpki_repo
open Rpki_sim
open Rpki_ip
module Rollback = Rpki_attack.Rollback
module Tlog = Rpki_transparency.Log

let victim = "victim-rp"
let target_prefix = V4.p "63.174.25.0/24"
let revoke_at = 3
let capture_at = 2
let kill_after = 5
let restart_at = 6
let ticks = 9

(* The bench's run_cell, reduced to what the assertions need. *)
let run ~persist ?fault () =
  let rig = Loop.restart_scenario ~persist ~grace:0 ~monitors:2 ~gossip_period:1 () in
  let sv = rig.Loop.rr_sv in
  let t = sv.Loop.sv_sim in
  let model = sv.Loop.sv_model in
  let atk = Rollback.plan ~authority:model.Model.continental in
  let recovery = ref None in
  for now = 1 to ticks do
    if now = revoke_at then
      Authority.revoke_roa model.Model.continental ~filename:model.Model.roa_cb_25 ~now;
    (* one-shot: fires on the victim's last pre-crash snapshot write *)
    if now = kill_after then
      Option.iter (Rpki_persist.Disk.inject rig.Loop.rr_disk) fault;
    if now = restart_at then
      recovery :=
        Some (Loop.restart_vantage t ~name:victim ~now ~make:rig.Loop.rr_respawn);
    ignore (Loop.step t ~now);
    if now = capture_at then Rollback.capture atk ~now;
    if now = kill_after then begin
      Loop.kill_vantage t ~name:victim;
      Rollback.apply atk (Loop.transport t)
    end
  done;
  (rig, t, Option.get !recovery)

let vrp_present vrps =
  List.exists (fun (v : Vrp.t) -> V4.Prefix.equal v.Vrp.prefix target_prefix) vrps

let router_sees_replay t =
  vrp_present (Rpki_rtr.Session.cache_vrps (Loop.rtr_cache t))

let key_of_mesh t =
  let g = Option.get (Loop.gossip_mesh t) in
  fun name ->
    List.find_opt
      (fun (v : Gossip.vantage) -> String.equal v.Gossip.v_name name)
      (Gossip.vantages g)
    |> Option.map (fun (v : Gossip.vantage) -> Relying_party.transparency_key v.Gossip.v_rp)

(* Persistence on: the restored baseline catches the replay within one
   gossip round, with from-scratch-verifiable evidence, and the hold keeps
   the resurrected VRP off the routers. *)
let test_persisted_victim_detects () =
  let _rig, t, recovery = run ~persist:true () in
  (match recovery with
  | Relying_party.Recovered { rc_generation; _ } ->
    Alcotest.(check bool) "several generations saved" true (rc_generation >= 1)
  | Relying_party.Recovered_fresh why ->
    Alcotest.fail ("fault-free snapshot failed to restore: "
                   ^ Relying_party.fresh_reason_to_string why));
  let detect =
    match Loop.first_rollback_tick t with
    | Some tk -> tk
    | None -> Alcotest.fail "persisted victim missed the rollback"
  in
  Alcotest.(check bool)
    (Printf.sprintf "detected (t%d) within one gossip round of restart (t%d)" detect
       restart_at)
    true
    (detect <= restart_at + 1);
  (* the local signal: the restored log itself contradicts the replay *)
  let local =
    List.exists (fun (r : Loop.tick_record) -> r.Loop.regressions <> []) (Loop.history t)
  in
  Alcotest.(check bool) "own restored log raised a regression" true local;
  (* the gossip signal, and its evidence re-verified from scratch *)
  let g = Option.get (Loop.gossip_mesh t) in
  let rollbacks = Gossip.rollbacks g in
  Alcotest.(check bool) "gossip Rollback raised" true (rollbacks <> []);
  let key_of = key_of_mesh t in
  List.iter
    (fun a ->
      Alcotest.(check bool) "rollback evidence verifies from scratch" true
        (Gossip.verify_fork ~key_of a);
      (* and stays verifiable through a portable DER bundle *)
      match Evidence.export ~key_of a with
      | Error why -> Alcotest.fail ("evidence export failed: " ^ why)
      | Ok bundle -> (
        match Evidence.verify bundle with
        | Ok _ -> ()
        | Error why -> Alcotest.fail ("exported bundle does not verify: " ^ why)))
    rollbacks;
  (* detection reached the routers: the resurrected VRP is not served *)
  Alcotest.(check bool) "replayed VRP not router-visible" false (router_sees_replay t);
  (match List.rev (Loop.history t) with
  | last :: _ ->
    Alcotest.(check bool) "evidence hold active at the end" true (last.Loop.rtr_holds > 0)
  | [] -> Alcotest.fail "no history")

(* Persistence off: the identical run restarts with no baseline — the
   rollback is silent and the revoked VRP is back in the routers. *)
let test_fresh_start_misses () =
  let _rig, t, recovery = run ~persist:false () in
  (match recovery with
  | Relying_party.Recovered_fresh Relying_party.No_snapshot -> ()
  | r -> Alcotest.fail ("expected a fresh start, got " ^ Relying_party.recovery_to_string r));
  Alcotest.(check bool) "no rollback detected" true (Loop.first_rollback_tick t = None);
  List.iter
    (fun (r : Loop.tick_record) ->
      Alcotest.(check (list Alcotest.reject)) "no local regressions" [] r.Loop.regressions)
    (Loop.history t);
  Alcotest.(check bool) "replayed VRP router-visible (attack yield)" true
    (router_sees_replay t)

(* Every injected disk fault degrades the restart to an explicit
   Recovered_fresh with a typed reason — never a crash, never a silently
   accepted snapshot (and, with a poisoned baseline, never a detection
   claim built on it). *)
let test_disk_faults_explicit () =
  List.iter
    (fun fault ->
      let _rig, _t, recovery = run ~persist:true ~fault () in
      match (fault, recovery) with
      | _, Relying_party.Recovered _ ->
        Alcotest.fail
          (Rpki_persist.Disk.fault_to_string fault
          ^ ": corrupted snapshot restored as good")
      | Rpki_persist.Disk.Drop_rename, Relying_party.Recovered_fresh reason -> (
        match reason with
        | Relying_party.Snapshot_stale _ -> ()
        | r ->
          Alcotest.fail
            ("dropped rename should read as a stale snapshot, got "
            ^ Relying_party.fresh_reason_to_string r))
      | _, Relying_party.Recovered_fresh reason -> (
        match reason with
        | Relying_party.Snapshot_corrupt _ | Relying_party.Log_inconsistent _ -> ()
        | r ->
          Alcotest.fail
            (Rpki_persist.Disk.fault_to_string fault
            ^ ": expected an explicit corruption, got "
            ^ Relying_party.fresh_reason_to_string r)))
    [ Rpki_persist.Disk.Torn_write; Rpki_persist.Disk.Partial_flush;
      Rpki_persist.Disk.Bit_flip 12345; Rpki_persist.Disk.Drop_rename ]

(* flush_cache is cache loss, not history loss: the in-memory transparency
   log (and the log incarnation) survive the wipe.  A restart without a
   snapshot is the opposite — a new incarnation whose peers notice. *)
let test_flush_cache_keeps_history () =
  let m = Model.build () in
  let rp = Model.relying_party ~name:"flush-rp" m in
  ignore (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ());
  ignore (Relying_party.sync rp ~now:2 ~universe:m.Model.universe ());
  let size = Tlog.size (Relying_party.transparency_log rp) in
  let epoch = Relying_party.log_epoch rp in
  Alcotest.(check bool) "log populated before flush" true (size > 0);
  Relying_party.flush_cache rp;
  Alcotest.(check int) "flush keeps the transparency log" size
    (Tlog.size (Relying_party.transparency_log rp));
  Alcotest.(check int) "flush keeps the log incarnation" epoch
    (Relying_party.log_epoch rp);
  (* revalidating the unchanged universe from scratch appends nothing new:
     the rebuilt observations dedup against the surviving history *)
  ignore (Relying_party.sync rp ~now:3 ~universe:m.Model.universe ());
  Alcotest.(check int) "resync after flush appends nothing" size
    (Tlog.size (Relying_party.transparency_log rp))

let test_restart_without_snapshot_is_new_incarnation () =
  let _rig, t, recovery = run ~persist:false () in
  (match recovery with
  | Relying_party.Recovered_fresh Relying_party.No_snapshot -> ()
  | r -> Alcotest.fail ("expected Recovered_fresh, got " ^ Relying_party.recovery_to_string r));
  let rp = (Loop.vantage t ~name:victim).Gossip.v_rp in
  Alcotest.(check bool) "restart bumped the log incarnation" true
    (Relying_party.log_epoch rp > 0);
  (* peers keep their memory of the old incarnation and flag the reset *)
  let g = Option.get (Loop.gossip_mesh t) in
  let resets =
    List.filter (function Gossip.Log_reset _ -> true | _ -> false) (Gossip.alarms g)
  in
  Alcotest.(check bool) "peers raised Log_reset after the fresh restart" true
    (resets <> [])

let () =
  Alcotest.run "restart"
    [ ("rollback",
       [ Alcotest.test_case "persisted victim detects the replay" `Quick
           test_persisted_victim_detects;
         Alcotest.test_case "fresh-start victim misses it" `Quick test_fresh_start_misses;
         Alcotest.test_case "disk faults degrade explicitly" `Quick
           test_disk_faults_explicit ]);
      ("cache-loss-vs-restart",
       [ Alcotest.test_case "flush_cache keeps the log" `Quick
           test_flush_cache_keeps_history;
         Alcotest.test_case "restart without snapshot is a new incarnation" `Quick
           test_restart_without_snapshot_is_new_incarnation ]) ]
