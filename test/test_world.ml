(* The world generator and universe synthesis.

   Properties (QCheck over random specs):
   - generation is deterministic in the seed;
   - the graph is connected and valley-free by construction: a route
     originated at ANY stub reaches every AS under Gao-Rexford export;
   - the degree distribution is heavy-tailed: the max/median degree ratio
     grows with graph size.

   Plus unit coverage of the metadata (roles, cones, of_topology on the
   fixed paper scenario), placement policies, universe synthesis
   invariants (nested allocations, CA hierarchy, victim rigging), and the
   end-to-end acceptance bar: split-view detection succeeds on a generated
   world under degree-based vantage placement — and fails without a mesh. *)

open Rpki_core
open Rpki_bgp
module Synthesis = Rpki_world.Synthesis
module Placement = Rpki_world.Placement
module Loop = Rpki_sim.Loop

let all_valid (_ : Route.t) = Origin_validation.Valid

let spec_gen =
  QCheck.Gen.(
    let* ases = int_range 30 300 in
    let* tier1 = int_range 2 6 in
    let* attach = int_range 1 3 in
    let* peer_fraction = float_bound_inclusive 0.2 in
    let* seed = int_range 0 1_000_000 in
    return
      { As_graph.ases; tier1; attach; peer_fraction; seed; first_asn = 1 })

let spec_print (s : As_graph.spec) =
  Printf.sprintf "{ases=%d; tier1=%d; attach=%d; peer_fraction=%.3f; seed=%d}"
    s.As_graph.ases s.As_graph.tier1 s.As_graph.attach s.As_graph.peer_fraction
    s.As_graph.seed

let spec_arb = QCheck.make ~print:spec_print spec_gen

(* --- determinism -------------------------------------------------------- *)

let fingerprint g =
  let topo = As_graph.topology g in
  List.map
    (fun asn ->
      ( asn,
        List.sort Int.compare (Topology.providers topo asn),
        List.sort Int.compare (Topology.peers topo asn),
        As_graph.role g asn,
        As_graph.cone_size g asn ))
    (As_graph.asns g)

let prop_deterministic =
  QCheck.Test.make ~name:"generate is deterministic in the seed" ~count:30 spec_arb
    (fun spec ->
      fingerprint (As_graph.generate spec) = fingerprint (As_graph.generate spec))

(* --- connectivity / valley-freeness ------------------------------------- *)

let reaches_everyone g origin =
  let topo = As_graph.topology g in
  let rib =
    Propagation.compute ~topo
      ~policy_of:(fun _ -> Policy.Ignore_rpki)
      ~validity_of:all_valid
      [ { Propagation.prefix = Rpki_ip.V4.p "172.16.0.0/16"; origin } ]
  in
  List.for_all (fun asn -> Propagation.route rib asn <> None) (As_graph.asns g)

let prop_stub_reaches_everyone =
  QCheck.Test.make ~name:"a random stub's route reaches every AS" ~count:20 spec_arb
    (fun spec ->
      let g = As_graph.generate spec in
      match As_graph.stubs g with
      | [] -> QCheck.assume_fail () (* tiny dense worlds may have no stub *)
      | stubs ->
        let origin = List.nth stubs (spec.As_graph.seed mod List.length stubs) in
        reaches_everyone g origin)

(* The exhaustive version on one fixed mid-size world: every single stub. *)
let test_every_stub_reaches_everyone () =
  let g = As_graph.generate { As_graph.default_spec with As_graph.ases = 200 } in
  List.iter
    (fun stub ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d's route reaches all %d ASes" stub (As_graph.size g))
        true (reaches_everyone g stub))
    (As_graph.stubs g)

(* --- heavy tail --------------------------------------------------------- *)

let ratio g =
  let st = As_graph.degree_stats g in
  float_of_int st.As_graph.d_max /. float_of_int (max 1 st.As_graph.d_median)

let prop_heavy_tail =
  QCheck.Test.make ~name:"max/median degree ratio grows with size" ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000))
    (fun seed ->
      let at ases =
        ratio (As_graph.generate { As_graph.default_spec with As_graph.ases; seed })
      in
      let small = at 150 and large = at 1500 in
      if not (large > small) then
        QCheck.Test.fail_reportf
          "tail did not grow: ratio %.1f at 150 ASes vs %.1f at 1500" small large;
      large > small && large >= 8.)

(* --- metadata ----------------------------------------------------------- *)

let test_roles_and_cones () =
  let g = As_graph.generate { As_graph.default_spec with As_graph.ases = 400 } in
  Alcotest.(check int) "tier1 count" As_graph.default_spec.As_graph.tier1
    (List.length (As_graph.tier1s g));
  Alcotest.(check int) "roles partition the graph" 400
    (List.length (As_graph.tier1s g)
    + List.length (As_graph.transits g)
    + List.length (As_graph.stubs g));
  List.iter
    (fun s -> Alcotest.(check int) (Printf.sprintf "stub AS%d cone" s) 1 (As_graph.cone_size g s))
    (As_graph.stubs g);
  (* the biggest tier-1 cone holds a sizable share of the graph *)
  let max_cone =
    List.fold_left (fun acc a -> max acc (As_graph.cone_size g a)) 0 (As_graph.tier1s g)
  in
  Alcotest.(check bool)
    (Printf.sprintf "a tier-1 cone spans a big share (%d/400)" max_cone)
    true (max_cone >= 100);
  (* by_degree is sorted *)
  let degs = List.map (As_graph.degree g) (As_graph.by_degree g) in
  Alcotest.(check bool) "by_degree descending" true
    (List.for_all2 ( >= ) (List.filteri (fun i _ -> i < 399) degs) (List.tl degs))

let test_of_topology_small () =
  let s = Topo_gen.small_scenario () in
  let g = Topo_gen.small_graph s in
  Alcotest.(check bool) "t1a is tier-1" true (As_graph.role g s.Topo_gen.t1a = As_graph.Tier1);
  Alcotest.(check bool) "mid1 is transit" true
    (As_graph.role g s.Topo_gen.mid1 = As_graph.Transit);
  Alcotest.(check bool) "victim is a stub" true
    (As_graph.role g s.Topo_gen.victim = As_graph.Stub);
  Alcotest.(check bool) "attacker is a stub" true
    (As_graph.role g s.Topo_gen.attacker = As_graph.Stub);
  (* t1a's cone: itself, mid1, mid2, victim, source *)
  Alcotest.(check int) "t1a cone" 5 (As_graph.cone_size g s.Topo_gen.t1a);
  Alcotest.(check int) "victim cone" 1 (As_graph.cone_size g s.Topo_gen.victim)

let test_topo_gen_wrapper () =
  let spec = Topo_gen.default_spec in
  let g = Topo_gen.generate spec in
  Alcotest.(check int) "tier1 asns" spec.Topo_gen.tier1 (List.length g.Topo_gen.tier1_asns);
  Alcotest.(check int) "tier2 asns" spec.Topo_gen.tier2 (List.length g.Topo_gen.tier2_asns);
  Alcotest.(check int) "stub asns" spec.Topo_gen.stubs (List.length g.Topo_gen.stub_asns);
  Alcotest.(check int) "graph metadata covers the topology"
    (spec.Topo_gen.tier1 + spec.Topo_gen.tier2 + spec.Topo_gen.stubs)
    (As_graph.size g.Topo_gen.graph);
  List.iter
    (fun t1 ->
      Alcotest.(check bool) "tier1 role" true
        (As_graph.role g.Topo_gen.graph t1 = As_graph.Tier1))
    g.Topo_gen.tier1_asns

(* --- placement ---------------------------------------------------------- *)

let test_placement () =
  let g = As_graph.generate { As_graph.default_spec with As_graph.ases = 300 } in
  let top = Placement.vantage_asns g Placement.By_degree ~count:5 ~exclude:[] in
  Alcotest.(check int) "five vantages" 5 (List.length top);
  let all_degrees = List.map (As_graph.degree g) (As_graph.asns g) in
  let fifth = List.nth (List.sort (fun a b -> Int.compare b a) all_degrees) 4 in
  List.iter
    (fun a ->
      Alcotest.(check bool) "by_degree picks top-degree ASes" true
        (As_graph.degree g a >= fifth))
    top;
  (* exclusion is respected and refills from the order *)
  let without = Placement.vantage_asns g Placement.By_degree ~count:5 ~exclude:[ List.hd top ] in
  Alcotest.(check bool) "excluded AS absent" true (not (List.mem (List.hd top) without));
  (* role placement covers all three roles *)
  let roles =
    Placement.vantage_asns g Placement.By_role ~count:3 ~exclude:[]
    |> List.map (As_graph.role g) |> List.sort_uniq compare
  in
  Alcotest.(check int) "role placement spans the hierarchy" 3 (List.length roles);
  (* random placement is seeded: deterministic, and another seed differs *)
  let r1 = Placement.vantage_asns g (Placement.Random 5) ~count:10 ~exclude:[] in
  let r2 = Placement.vantage_asns g (Placement.Random 5) ~count:10 ~exclude:[] in
  let r3 = Placement.vantage_asns g (Placement.Random 6) ~count:10 ~exclude:[] in
  Alcotest.(check bool) "random placement deterministic" true (r1 = r2);
  Alcotest.(check bool) "random placement seed-sensitive" true (r1 <> r3)

(* --- universe synthesis ------------------------------------------------- *)

let small_world_spec =
  { Synthesis.default_spec with
    Synthesis.graph = { As_graph.default_spec with As_graph.ases = 120; seed = 3 };
    ca_min_cone = 10 }

let test_synthesis_invariants () =
  let w = Synthesis.build small_world_spec in
  let g = Synthesis.graph w in
  (* every AS has a distinct /24 *)
  let prefixes = List.map (Synthesis.prefix_of w) (As_graph.asns g) in
  Alcotest.(check int) "distinct /24 per AS" (As_graph.size g)
    (List.length (List.sort_uniq compare prefixes));
  (* CAs exist below the root and cover the victim *)
  Alcotest.(check bool) "has CAs" true (Synthesis.cas w <> []);
  let victim = Synthesis.victim w in
  Alcotest.(check bool) "victim is a stub" true (As_graph.role g victim = As_graph.Stub);
  Alcotest.(check bool) "victim is covered" true (Synthesis.roa_of w victim <> None);
  Alcotest.(check bool) "rp differs from victim" true (Synthesis.rp_asn w <> victim);
  (* the victim's prefix is inside its CA's certified resources *)
  let ca = Synthesis.victim_ca w in
  let ca_res = (Rpki_repo.Authority.cert ca).Cert.resources in
  let victim_res =
    Resources.make
      ~v4:(Rpki_ip.V4.Set.of_prefix (Synthesis.prefix_of w victim)) ()
  in
  Alcotest.(check bool) "victim prefix inside its CA's resources" true
    (Resources.subset victim_res ca_res);
  (* announcements stay bounded: repository hosts + victim + rp *)
  let anns = Synthesis.base_announcements w in
  Alcotest.(check bool)
    (Printf.sprintf "bounded announcements (%d)" (List.length anns))
    true
    (List.length anns <= List.length (Synthesis.cas w) + 3);
  (* determinism *)
  let w2 = Synthesis.build small_world_spec in
  Alcotest.(check string) "synthesis deterministic" (Synthesis.summary w)
    (Synthesis.summary w2)

(* --- end-to-end: split-view detection on a generated world -------------- *)

let run_split_view ~monitors =
  let rig =
    Loop.world_scenario ~monitors ~placement:Placement.By_degree ~grace:4
      ~world:small_world_spec ()
  in
  let t = rig.Loop.wr_sim in
  ignore (Loop.step t ~now:1);
  ignore (Loop.step t ~now:2);
  let r2 = List.hd (Loop.history t |> List.rev) in
  Alcotest.(check bool) "victim probe up before the attack" true
    (List.assoc "victim-prefix" r2.Loop.probe_results);
  let sv =
    Rpki_attack.Split_view.plan ~authority:rig.Loop.wr_target_authority
      ~target_filename:rig.Loop.wr_target_filename ()
  in
  Rpki_attack.Split_view.apply sv (Loop.transport t);
  for now = 3 to 10 do
    ignore (Loop.step t ~now)
  done;
  (rig, Loop.first_fork_tick t)

let test_split_view_detected_on_world () =
  let rig, fork = run_split_view ~monitors:3 in
  (match fork with
  | None -> Alcotest.fail "no fork alarm on a gossiping generated world"
  | Some tick ->
    Alcotest.(check bool)
      (Printf.sprintf "fork detected within grace (tick %d)" tick)
      true (tick <= 3 + 4));
  Alcotest.(check int) "three monitors registered" 3 (List.length rig.Loop.wr_monitors)

let test_split_view_missed_without_mesh () =
  let _, fork = run_split_view ~monitors:0 in
  Alcotest.(check bool) "single vantage cannot detect the fork" true (fork = None)

(* Stalloris on a generated world: trickle the victim CA's publication
   point under perfect upkeep and short validity windows — its subtree's
   VRPs lapse; lift the stall and the relying party recovers in full. *)
let test_stall_on_world () =
  let wspec =
    { small_world_spec with
      Synthesis.validity = Some 5; refresh_interval = Some 3 }
  in
  (* grace 0: expired VRPs drop immediately instead of being held *)
  let rig = Loop.world_scenario ~monitors:0 ~grace:0 ~world:wspec () in
  let t = rig.Loop.wr_sim in
  let w = rig.Loop.wr_world in
  let churn ~now = Rpki_repo.Authority.maintain (Synthesis.root w) ~now in
  churn ~now:1;
  ignore (Loop.step t ~now:1);
  churn ~now:2;
  let healthy = (Loop.step t ~now:2).Loop.vrp_count in
  let plan =
    Rpki_attack.Stall.plan_against ~victim:(Synthesis.victim_ca w) ~intensity:256
  in
  Rpki_attack.Stall.apply plan (Loop.transport t);
  for now = 3 to 8 do
    churn ~now;
    ignore (Loop.step t ~now)
  done;
  let stalled = List.hd (Loop.history t |> List.rev) in
  Alcotest.(check bool)
    (Printf.sprintf "stalled CA's VRPs lapsed (%d -> %d)" healthy stalled.Loop.vrp_count)
    true
    (stalled.Loop.vrp_count <= healthy - 2);
  (* the cover ROA lapses with the victim's, so the route degrades to
     NotFound — routable, which is exactly the paper's downgrade *)
  Alcotest.(check bool) "victim still routable (downgrade, not outage)" true
    (List.assoc "victim-prefix" stalled.Loop.probe_results);
  Rpki_attack.Stall.lift plan (Loop.transport t);
  for now = 9 to 12 do
    churn ~now;
    ignore (Loop.step t ~now)
  done;
  let final = List.hd (Loop.history t |> List.rev) in
  Alcotest.(check int) "full recovery after the stall lifts" healthy
    final.Loop.vrp_count

(* Crash/restart on a generated world: kill the persisted victim RP
   mid-run, bring it back via the rig's respawn builder, and require a
   verified snapshot restore plus an unchanged VRP view. *)
let test_restart_on_world () =
  let rig =
    Loop.world_scenario ~monitors:2 ~persist:true ~world:small_world_spec ()
  in
  let t = rig.Loop.wr_sim in
  for now = 1 to 4 do
    ignore (Loop.step t ~now)
  done;
  let before = List.hd (Loop.history t |> List.rev) in
  Loop.kill_vantage t ~name:"victim-rp";
  ignore (Loop.step t ~now:5);
  let recovery =
    Loop.restart_vantage t ~name:"victim-rp" ~now:6
      ~make:(Option.get rig.Loop.wr_respawn)
  in
  Alcotest.(check bool)
    (Printf.sprintf "snapshot restore succeeded (%s)"
       (Rpki_repo.Relying_party.recovery_to_string recovery))
    true
    (match recovery with Rpki_repo.Relying_party.Recovered _ -> true | _ -> false);
  for now = 6 to 9 do
    ignore (Loop.step t ~now)
  done;
  let after = List.hd (Loop.history t |> List.rev) in
  Alcotest.(check int) "VRP view unchanged across the restart"
    before.Loop.vrp_count after.Loop.vrp_count;
  Alcotest.(check bool) "victim probe up after the restart" true
    (List.assoc "victim-prefix" after.Loop.probe_results)

let () =
  Alcotest.run "world"
    [ ( "generator-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_deterministic; prop_stub_reaches_everyone; prop_heavy_tail ] );
      ( "generator-units",
        [ Alcotest.test_case "every stub of a 200-AS world reaches everyone" `Slow
            test_every_stub_reaches_everyone;
          Alcotest.test_case "roles, cones, degree order" `Quick test_roles_and_cones;
          Alcotest.test_case "of_topology wraps the fixed paper scenario" `Quick
            test_of_topology_small;
          Alcotest.test_case "Topo_gen delegates to the world generator" `Quick
            test_topo_gen_wrapper ] );
      ( "placement",
        [ Alcotest.test_case "degree / role / random policies" `Quick test_placement ] );
      ( "synthesis",
        [ Alcotest.test_case "allocation and CA-hierarchy invariants" `Quick
            test_synthesis_invariants ] );
      ( "end-to-end",
        [ Alcotest.test_case "split view detected on a generated world" `Slow
            test_split_view_detected_on_world;
          Alcotest.test_case "missed without a gossip mesh" `Slow
            test_split_view_missed_without_mesh;
          Alcotest.test_case "stall downgrade and recovery on a generated world" `Slow
            test_stall_on_world;
          Alcotest.test_case "crash/restart restores the view on a generated world"
            `Slow test_restart_on_world ] ) ]
