(* Tests for the DER encoder/decoder. *)

open Rpki_asn
open Rpki_bignum

let der = Alcotest.testable Der.pp ( = )

let hex = Rpki_util.Hex.of_string

let test_primitive_encodings () =
  let check name want v = Alcotest.(check string) name want (hex (Der.encode v)) in
  check "INTEGER 0" "020100" (Der.Integer Nat.zero);
  check "INTEGER 127" "02017f" (Der.int_ 127);
  check "INTEGER 128 gets pad" "02020080" (Der.int_ 128);
  check "INTEGER 256" "02020100" (Der.int_ 256);
  check "BOOLEAN true" "0101ff" (Der.Boolean true);
  check "BOOLEAN false" "010100" (Der.Boolean false);
  check "NULL" "0500" Der.Null;
  check "OCTET STRING" "0403616263" (Der.Octet_string "abc");
  check "BIT STRING" "030400616263" (Der.Bit_string "abc");
  check "UTF8" "0c026869" (Der.Utf8 "hi");
  check "empty SEQUENCE" "3000" (Der.Sequence []);
  check "SEQUENCE" "3006020101020102" (Der.Sequence [ Der.int_ 1; Der.int_ 2 ]);
  check "context tag" "a1030101ff" (Der.Context (1, [ Der.Boolean true ]))

let test_oid () =
  (* 1.2.840.113549.1.1.11 = sha256WithRSAEncryption *)
  Alcotest.(check string) "rsa oid" "06092a864886f70d01010b"
    (hex (Der.encode (Der.Oid [ 1; 2; 840; 113549; 1; 1; 11 ])));
  Alcotest.(check der) "oid roundtrip"
    (Der.Oid [ 1; 2; 840; 113549; 1; 1; 11 ])
    (Der.decode_exn (Der.encode (Der.Oid [ 1; 2; 840; 113549; 1; 1; 11 ])));
  Alcotest.(check der) "2.x oid" (Der.Oid [ 2; 5; 29; 15 ])
    (Der.decode_exn (Der.encode (Der.Oid [ 2; 5; 29; 15 ])))

let test_long_lengths () =
  (* bodies of 127 / 128 / 256 / 65536 bytes cross length-encoding forms *)
  List.iter
    (fun n ->
      let v = Der.Octet_string (String.make n 'z') in
      Alcotest.(check der) (Printf.sprintf "len %d" n) v (Der.decode_exn (Der.encode v)))
    [ 0; 1; 127; 128; 255; 256; 65535; 65536 ]

let test_decode_errors () =
  let expect_error name s =
    match Der.decode s with
    | Ok _ -> Alcotest.failf "%s: expected error" name
    | Error _ -> ()
  in
  expect_error "empty" "";
  expect_error "truncated header" "\x30";
  expect_error "truncated body" "\x30\x05\x02\x01";
  expect_error "indefinite length" "\x30\x80\x00\x00";
  expect_error "non-minimal length" "\x04\x81\x05hello";
  expect_error "negative integer" "\x02\x01\x80";
  expect_error "non-minimal integer" "\x02\x02\x00\x01";
  expect_error "empty integer" "\x02\x00";
  expect_error "bad boolean" "\x01\x01\x42";
  expect_error "boolean length" "\x01\x02\xff\xff";
  expect_error "null with content" "\x05\x01\x00";
  expect_error "unknown tag" "\x13\x01a";
  expect_error "trailing garbage" "\x05\x00\x00"

let test_helpers () =
  Alcotest.(check int) "to_int" 42 (Der.to_int_exn (Der.int_ 42));
  Alcotest.(check string) "to_string" "x" (Der.to_string_exn (Der.Utf8 "x"));
  Alcotest.check_raises "to_int of seq" (Der.Decode_error "expected INTEGER") (fun () ->
      ignore (Der.to_int_exn (Der.Sequence [])));
  Alcotest.(check int) "to_list" 2 (List.length (Der.to_list_exn (Der.Sequence [ Der.Null; Der.Null ])))

(* random DER tree generator for roundtrip testing *)
let gen_der =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            let leaf =
              oneof
                [ map (fun b -> Der.Boolean b) bool;
                  map (fun i -> Der.int_ (abs i)) int;
                  map (fun s -> Der.Octet_string s) (string_size (int_bound 40));
                  map (fun s -> Der.Bit_string s) (string_size (int_bound 40));
                  map (fun s -> Der.Utf8 s) (string_size (int_bound 40));
                  return Der.Null;
                  map
                    (fun arcs -> Der.Oid (1 :: 2 :: List.map abs arcs))
                    (list_size (int_bound 6) int) ]
            in
            if n <= 1 then leaf
            else
              oneof
                [ leaf;
                  map (fun l -> Der.Sequence l) (list_size (int_bound 5) (self (n / 2)));
                  map (fun l -> Der.Set l) (list_size (int_bound 5) (self (n / 2)));
                  map2
                    (fun tag l -> Der.Context (tag mod 31, l))
                    (int_bound 30)
                    (list_size (int_bound 4) (self (n / 2))) ])
          n))

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip"
       (QCheck.make ~print:(Format.asprintf "%a" Der.pp) gen_der)
       (fun v -> Der.decode_exn (Der.encode v) = v))

let prop_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"encoding is deterministic"
       (QCheck.make ~print:(Format.asprintf "%a" Der.pp) gen_der)
       (fun v -> String.equal (Der.encode v) (Der.encode (Der.decode_exn (Der.encode v)))))

(* Malformed-input properties: structurally corrupted encodings must be
   rejected outright, never misparsed into a different value. *)

let rejects s = match Der.decode s with Ok _ -> false | Error _ -> true

(* Every strict prefix of a valid encoding is a truncated TLV: either the
   header is cut short or the body falls short of the declared length. *)
let prop_truncated_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"every strict prefix is rejected"
       (QCheck.make ~print:(Format.asprintf "%a" Der.pp) gen_der)
       (fun v ->
         let s = Der.encode v in
         let ok = ref true in
         for n = 0 to String.length s - 1 do
           if not (rejects (String.sub s 0 n)) then ok := false
         done;
         !ok))

(* DER demands the minimal length form: a short-form-sized length written
   in the 0x81 long form, or a long form with a leading zero byte, is BER
   and must be refused. *)
let prop_overlong_length_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"non-minimal length forms are rejected"
       QCheck.(string_of_size (Gen.int_bound 100))
       (fun s ->
         let n = Char.chr (String.length s) in
         rejects (Printf.sprintf "\x04\x81%c%s" n s)
         && rejects (Printf.sprintf "\x04\x82\x00%c%s" n s)))

(* A non-negative INTEGER carries at most one leading zero byte, and only
   when the next byte has the top bit set; an extra zero pad is non-minimal. *)
let prop_padded_integer_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"zero-padded INTEGERs are rejected"
       QCheck.(int_bound 0x3FFFFFFF)
       (fun i ->
         let enc = Der.encode (Der.int_ i) in
         let body = String.sub enc 2 (String.length enc - 2) in
         rejects
           (Printf.sprintf "\x02%c\x00%s" (Char.chr (String.length body + 1)) body)))

let () =
  Alcotest.run "asn"
    [ ( "der-unit",
        [ Alcotest.test_case "primitive encodings" `Quick test_primitive_encodings;
          Alcotest.test_case "OIDs" `Quick test_oid;
          Alcotest.test_case "long lengths" `Quick test_long_lengths;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "helpers" `Quick test_helpers ] );
      ( "der-properties",
        [ prop_roundtrip; prop_deterministic; prop_truncated_rejected;
          prop_overlong_length_rejected; prop_padded_integer_rejected ] ) ]
