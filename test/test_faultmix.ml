(* The fault-mix engine and the unsafe-VRP analysis.

   Pinned properties:
   - the weighted sampler converges to the checked-in corpus frequencies
     under a fixed seed;
   - authority-side fault injections surface as the matching typed issue
     kinds at the relying party;
   - on a fully valid universe the unsafe analysis finds nothing, and warn
     leaves the effective VRP set untouched;
   - under random fault soups, reject's VRP set is exactly accept's minus
     the unsafe set (so always a subset), and warn's equals accept's;
   - a rate-0 engine run of the closed loop is trace-identical to a run
     with no engine at all. *)

open Rpki_core
open Rpki_repo

let model_with_cover () =
  let m = Model.build () in
  ignore (Model.add_fig5_right_roa m ~now:0);
  m

let targets (m : Model.t) =
  [ m.Model.arin; m.Model.sprint; m.Model.etb; m.Model.continental ]

let no_stale unsafe =
  { Relying_party.default_policy with Relying_party.use_stale = false; unsafe }

let vrp_subset a b =
  List.for_all (fun v -> List.exists (fun w -> Vrp.compare v w = 0) b) a

(* --- the sampler tracks the corpus ---------------------------------- *)

let test_sampler_converges () =
  let n = 20_000 in
  let rng = Rpki_util.Rng.create 1234 in
  let counts = Hashtbl.create 16 in
  for _ = 1 to n do
    let c = Fault_corpus.sample rng in
    Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0)
  done;
  List.iter
    (fun (c, _) ->
      let seen = Option.value (Hashtbl.find_opt counts c) ~default:0 in
      let freq = float_of_int seen /. float_of_int n in
      let expected = Fault_corpus.expected_frequency c in
      if Float.abs (freq -. expected) > 0.02 then
        Alcotest.failf "%s: sampled %.4f, corpus %.4f" (Fault_corpus.to_string c)
          freq expected)
    Fault_corpus.weights

let test_corpus_table () =
  Alcotest.(check int) "total weight" 126 Fault_corpus.total_weight;
  Alcotest.(check int)
    "expired CRL weight"
    47
    (List.assoc Fault_corpus.Expired_crl Fault_corpus.weights)

(* --- authority faults surface as typed issues ------------------------ *)

let issue_kinds (r : Relying_party.sync_result) =
  List.map (fun (i : Relying_party.issue) -> i.Relying_party.kind) r.Relying_party.issues

let sync_fresh ?(unsafe = Relying_party.Unsafe_accept) m ~now =
  let rp = Model.relying_party ~name:(Printf.sprintf "rp-t%d" now) m in
  Relying_party.sync rp ~now ~universe:m.Model.universe ~policy:(no_stale unsafe) ()

let test_expired_crl_issue () =
  let m = model_with_cover () in
  Authority.expire_crl m.Model.continental ~now:1;
  let r = sync_fresh m ~now:2 in
  if not (List.mem Validation.Ik_expired_crl (issue_kinds r)) then
    Alcotest.fail "expired CRL not classified as expired-crl"

let test_withheld_manifest_issue () =
  let m = model_with_cover () in
  Authority.withhold_manifest m.Model.continental;
  let r = sync_fresh m ~now:2 in
  if not (List.mem Validation.Ik_missing_manifest (issue_kinds r)) then
    Alcotest.fail "withheld manifest not classified as missing-manifest"

let test_seqnum_gap_issue () =
  let m = model_with_cover () in
  let rp = Model.relying_party ~name:"gap-rp" m in
  let policy = no_stale Relying_party.Unsafe_accept in
  ignore (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~policy ());
  Authority.skip_manifest_numbers m.Model.continental
    ~gap:(Relying_party.seqnum_gap_threshold + 50) ~now:2;
  let r = Relying_party.sync rp ~now:2 ~universe:m.Model.universe ~policy () in
  if
    not
      (List.exists
         (fun (i : Relying_party.issue) -> i.Relying_party.kind = Validation.Ik_seqnum_gap)
         r.Relying_party.issues)
  then Alcotest.fail "manifest-number leap not classified as seqnum-gap"

let test_manifest_regression_issue () =
  let m = model_with_cover () in
  let rp = Model.relying_party ~name:"reg-rp" m in
  let policy = no_stale Relying_party.Unsafe_accept in
  ignore (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~policy ());
  Authority.regress_manifest_number m.Model.continental ~by:1 ~now:2;
  let r = Relying_party.sync rp ~now:2 ~universe:m.Model.universe ~policy () in
  if not (List.mem Validation.Ik_manifest_regression (issue_kinds r)) then
    Alcotest.fail "manifest-number rewind not classified as manifest-regression"

let test_overclaim_issue () =
  let m = model_with_cover () in
  ignore
    (Authority.overclaim_roa m.Model.continental ~asid:64511
       ~prefix:(Rpki_ip.V4.p "203.0.113.0/24") ~now:1);
  let r = sync_fresh m ~now:2 in
  if not (List.mem Validation.Ik_rfc3779_overclaim (issue_kinds r)) then
    Alcotest.fail "overclaim not classified as rfc3779-overclaim"

let test_issue_counts_ordering () =
  let counts =
    Relying_party.issue_counts
      [ { Relying_party.uri = "a"; filename = None; kind = Validation.Ik_expired_crl;
          reason = "x" };
        { Relying_party.uri = "b"; filename = None; kind = Validation.Ik_expired_crl;
          reason = "y" };
        { Relying_party.uri = "c"; filename = None; kind = Validation.Ik_seqnum_gap;
          reason = "z" } ]
  in
  match counts with
  | (Validation.Ik_expired_crl, 2) :: (Validation.Ik_seqnum_gap, 1) :: [] -> ()
  | _ -> Alcotest.fail "issue_counts not sorted most-frequent-first"

(* --- the unsafe analysis --------------------------------------------- *)

let test_no_unsafe_on_valid_universe () =
  let m = model_with_cover () in
  let accept = sync_fresh ~unsafe:Relying_party.Unsafe_accept m ~now:1 in
  let warn = sync_fresh ~unsafe:Relying_party.Unsafe_warn m ~now:1 in
  let reject = sync_fresh ~unsafe:Relying_party.Unsafe_reject m ~now:1 in
  Alcotest.(check int) "no unsafe VRPs under warn" 0
    (List.length warn.Relying_party.unsafe_vrps);
  Alcotest.(check bool) "failed set empty" true
    (Resources.is_empty warn.Relying_party.failed_resources);
  Alcotest.(check bool) "warn set = accept set" true
    (warn.Relying_party.vrps = accept.Relying_party.vrps);
  Alcotest.(check bool) "reject set = accept set" true
    (reject.Relying_party.vrps = accept.Relying_party.vrps)

let test_unreachable_sub_ca_is_unsafe () =
  let m = model_with_cover () in
  let transport = Transport.create () in
  Transport.set_fault transport
    ~uri:(Pub_point.uri (Authority.pub m.Model.continental))
    Transport.Unreachable;
  let sync name unsafe =
    let rp = Model.relying_party ~name m in
    Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~transport
      ~policy:(no_stale unsafe) ()
  in
  let warn = sync "warn-rp" Relying_party.Unsafe_warn in
  let reject = sync "reject-rp" Relying_party.Unsafe_reject in
  if warn.Relying_party.unsafe_vrps = [] then
    Alcotest.fail "covering VRP not flagged unsafe under warn";
  Alcotest.(check bool) "failed set nonempty" false
    (Resources.is_empty warn.Relying_party.failed_resources);
  (* the unsafe VRPs warn reports are exactly what reject removes *)
  List.iter
    (fun u ->
      if List.exists (fun v -> Vrp.compare u v = 0) reject.Relying_party.vrps then
        Alcotest.failf "unsafe VRP %s survived reject" (Vrp.to_string u))
    reject.Relying_party.unsafe_vrps;
  if not (vrp_subset reject.Relying_party.vrps warn.Relying_party.vrps) then
    Alcotest.fail "reject's VRP set is not a subset of warn's"

(* Under random fault soups: warn = accept, reject = accept minus its
   unsafe set.  One-shot syncs on the faulted universe, so the comparison
   is free of closed-loop feedback. *)
let policies_agree seed =
  let m = model_with_cover () in
  let transport = Transport.create () in
  let engine = Fault_mix.create ~seed ~rate:0.5 ~repair_after:2 () in
  for now = 1 to 3 do
    ignore (Fault_mix.tick engine ~targets:(targets m) ~transports:[ transport ] ~now)
  done;
  let sync name unsafe =
    let rp = Model.relying_party ~name m in
    Relying_party.sync rp ~now:4 ~universe:m.Model.universe ~transport
      ~policy:(no_stale unsafe) ()
  in
  let accept = sync (Printf.sprintf "a%d" seed) Relying_party.Unsafe_accept in
  let warn = sync (Printf.sprintf "w%d" seed) Relying_party.Unsafe_warn in
  let reject = sync (Printf.sprintf "r%d" seed) Relying_party.Unsafe_reject in
  warn.Relying_party.vrps = accept.Relying_party.vrps
  && vrp_subset reject.Relying_party.vrps accept.Relying_party.vrps
  && List.for_all
       (fun (v : Vrp.t) ->
         List.exists (fun w -> Vrp.compare v w = 0) reject.Relying_party.vrps
         = not
             (List.exists
                (fun u -> Vrp.compare v u = 0)
                reject.Relying_party.unsafe_vrps))
       accept.Relying_party.vrps

(* --- rate 0 is the engine-less run ----------------------------------- *)

let trace records =
  String.concat ";"
    (List.map
       (fun (r : Rpki_sim.Loop.tick_record) ->
         Printf.sprintf "%d:%d:%d:%d:%d:%d" r.Rpki_sim.Loop.time
           r.Rpki_sim.Loop.vrp_count r.Rpki_sim.Loop.issue_count
           r.Rpki_sim.Loop.rtr_serial r.Rpki_sim.Loop.sync_elapsed
           r.Rpki_sim.Loop.unsafe_count)
       records)

let test_rate0_identical () =
  let ticks = 6 in
  let rig = Rpki_sim.Loop.fault_mix_scenario ~rate:0. () in
  let with_engine =
    List.init ticks (fun i -> snd (Rpki_sim.Loop.fault_mix_step rig ~now:(i + 1)))
  in
  let sc = Rpki_sim.Loop.section6_scenario () in
  let without_engine =
    List.init ticks (fun i -> Rpki_sim.Loop.step sc.Rpki_sim.Loop.sim ~now:(i + 1))
  in
  Alcotest.(check string) "rate-0 trace equals engine-less trace"
    (trace without_engine) (trace with_engine)

(* --- engine bookkeeping ---------------------------------------------- *)

let test_engine_repairs () =
  let m = model_with_cover () in
  let transport = Transport.create () in
  let engine = Fault_mix.create ~seed:3 ~rate:1.0 ~repair_after:1 () in
  let injected_t1 =
    Fault_mix.tick engine ~targets:(targets m) ~transports:[ transport ] ~now:1
  in
  Alcotest.(check bool) "rate-1 engine injects" true (injected_t1 <> []);
  (* every tick-1 fault is due at tick 2 *)
  ignore (Fault_mix.tick engine ~targets:[] ~transports:[ transport ] ~now:2);
  Alcotest.(check int) "all tick-1 faults repaired"
    (List.length injected_t1) (Fault_mix.repaired engine);
  Alcotest.(check (list (pair string int))) "no active faults left" []
    (List.map
       (fun (a : Fault_mix.active) -> (a.Fault_mix.af_authority, 0))
       (Fault_mix.active engine))

let test_rate_validation () =
  Alcotest.check_raises "rate above 1 rejected"
    (Invalid_argument "Fault_mix.create: rate outside [0,1]") (fun () ->
      ignore (Fault_mix.create ~seed:1 ~rate:1.5 ()))

let prop count name p =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
       p)

let () =
  Alcotest.run "fault-mix"
    [ ( "corpus",
        [ Alcotest.test_case "sampler converges to corpus frequencies" `Quick
            test_sampler_converges;
          Alcotest.test_case "weight table matches the corpus" `Quick test_corpus_table ] );
      ( "typed issues",
        [ Alcotest.test_case "expired CRL" `Quick test_expired_crl_issue;
          Alcotest.test_case "withheld manifest" `Quick test_withheld_manifest_issue;
          Alcotest.test_case "seqnum gap" `Quick test_seqnum_gap_issue;
          Alcotest.test_case "manifest regression" `Quick test_manifest_regression_issue;
          Alcotest.test_case "RFC 3779 overclaim" `Quick test_overclaim_issue;
          Alcotest.test_case "issue_counts ordering" `Quick test_issue_counts_ordering ] );
      ( "unsafe VRPs",
        [ Alcotest.test_case "fully valid universe has none" `Quick
            test_no_unsafe_on_valid_universe;
          Alcotest.test_case "unreachable sub-CA flags the covering ROA" `Quick
            test_unreachable_sub_ca_is_unsafe;
          prop 6 "warn = accept, reject = accept minus unsafe" policies_agree ] );
      ( "engine",
        [ Alcotest.test_case "rate 0 is trace-identical to no engine" `Quick
            test_rate0_identical;
          Alcotest.test_case "faults age out and are repaired" `Quick test_engine_repairs;
          Alcotest.test_case "rate is validated" `Quick test_rate_validation ] ) ]
