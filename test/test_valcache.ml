(* Cache transparency (the PR's correctness bar for the shared validation
   plane): attaching a cross-vantage Valcache must be invisible to every
   observable result.  On randomly generated scenarios — monitor count,
   grace, churn, transport faults, and a split-view or rollback-free attack
   mix — the simulation is run twice from identical initial conditions,
   once with the shared cache and once without, and every tick record,
   the victim's full sync result, the gossip alarm set and the fork
   detection tick must match exactly.  The only permitted difference is
   the number of RSA verifications actually executed, which must never
   increase cache-on.

   This is the reason content addressing is safe under split view: a
   forked listing hashes differently, so the cache cannot launder the
   attacker's view into an honest vantage (or vice versa). *)

open Rpki_core
open Rpki_repo
open Rpki_sim
module Split_view = Rpki_attack.Split_view

type attack = No_attack | Stealthy | Overt

(* One deterministic scenario drawn from [seed]. *)
type knobs = {
  monitors : int;
  grace : int;
  attack : attack;
  attack_at : int;
  ticks : int;
  churn : bool;
  slow : bool;
}

let knobs_of_seed seed =
  let rng = Rpki_util.Rng.create seed in
  {
    monitors = Rpki_util.Rng.int rng 4;
    grace = Rpki_util.Rng.int rng 5;
    attack =
      (match Rpki_util.Rng.int rng 3 with
      | 0 -> No_attack
      | 1 -> Stealthy
      | _ -> Overt);
    attack_at = 2 + Rpki_util.Rng.int rng 3;
    ticks = 4 + Rpki_util.Rng.int rng 4;
    churn = Rpki_util.Rng.bool rng;
    slow = Rpki_util.Rng.bool rng;
  }

(* Everything a sync makes observable, minus the origin-validation index
   (structural, rebuilt from [vrps]) and the mutable tree-head timestamp
   field carried inside [tree_head] (compared separately as a whole). *)
let sync_view (res : Relying_party.sync_result) =
  ( res.Relying_party.vrps,
    res.Relying_party.issues,
    res.Relying_party.fetches,
    res.Relying_party.sync_elapsed,
    res.Relying_party.budget_exhausted,
    res.Relying_party.cas_validated,
    res.Relying_party.points_reused,
    res.Relying_party.points_revalidated,
    res.Relying_party.observations_appended,
    res.Relying_party.tree_head )

let run ~valcache (k : knobs) =
  let sv =
    Loop.split_view_scenario ~monitors:k.monitors ~grace:k.grace ~gossip_period:1
      ~valcache ()
  in
  let t = sv.Loop.sv_sim in
  if k.slow then
    Transport.set_fault (Loop.transport t)
      ~uri:(Pub_point.uri (Authority.pub sv.Loop.sv_model.Model.continental))
      (Transport.Slow 2);
  let atk =
    lazy
      (Split_view.plan ~authority:sv.Loop.sv_model.Model.continental
         ~target_filename:sv.Loop.sv_target_filename
         ~stealth:(if k.attack = Overt then Split_view.Overt else Split_view.Stealthy)
         ())
  in
  for now = 1 to k.ticks do
    if k.churn then Authority.maintain sv.Loop.sv_model.Model.arin ~now;
    if k.attack <> No_attack && now = k.attack_at then
      Split_view.apply (Lazy.force atk) (Loop.transport t);
    ignore (Loop.step t ~now)
  done;
  let trace =
    List.map
      (fun (r : Loop.tick_record) ->
        ( r.Loop.time,
          r.Loop.vrp_count,
          r.Loop.issue_count,
          r.Loop.probe_results,
          r.Loop.rtr_serial,
          List.length r.Loop.vrp_diff.Vrp.added,
          List.length r.Loop.vrp_diff.Vrp.removed,
          List.length r.Loop.regressions ))
      (Loop.history t)
  in
  let victim = (Loop.vantage t ~name:"victim-rp").Gossip.v_rp in
  let res =
    match Relying_party.last_result victim with
    | Some r -> r
    | None -> failwith "victim never synced"
  in
  let alarms =
    match Loop.gossip_mesh t with
    | None -> []
    | Some g ->
      List.sort String.compare (List.map Gossip.describe_alarm (Gossip.alarms g))
  in
  let checks =
    List.fold_left
      (fun acc (r : Loop.tick_record) -> acc + r.Loop.sig_checks)
      0 (Loop.history t)
  in
  (trace, sync_view res, alarms, Loop.first_fork_tick t, checks)

let transparency_invariant seed =
  let k = knobs_of_seed seed in
  let trace_off, sync_off, alarms_off, fork_off, checks_off = run ~valcache:false k in
  let trace_on, sync_on, alarms_on, fork_on, checks_on = run ~valcache:true k in
  if trace_on <> trace_off then
    QCheck.Test.fail_reportf "seed %d: per-tick records diverge cache-on vs. cache-off" seed;
  if sync_on <> sync_off then
    QCheck.Test.fail_reportf "seed %d: the victim's sync result diverges" seed;
  if alarms_on <> alarms_off then
    QCheck.Test.fail_reportf "seed %d: gossip alarms diverge\n  on:  %s\n  off: %s" seed
      (String.concat " | " alarms_on)
      (String.concat " | " alarms_off);
  if fork_on <> fork_off then
    QCheck.Test.fail_reportf "seed %d: fork detection tick diverges" seed;
  if checks_on > checks_off then
    QCheck.Test.fail_reportf "seed %d: the shared cache did MORE crypto (%d > %d)" seed
      checks_on checks_off;
  true

let prop_transparency =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10 ~name:"shared valcache is observationally transparent"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
       transparency_invariant)

(* Unit check of the verdict memo itself: a repeated (key, signature,
   message) triple is verified once and replayed after, for both verdicts. *)
let test_verdict_memo () =
  let vc = Valcache.create () in
  let kp = Rpki_crypto.Rsa.generate ~bits:512 (Rpki_util.Rng.create 42) in
  let key = kp.Rpki_crypto.Rsa.public and priv = kp.Rpki_crypto.Rsa.private_ in
  let msg = "the same message" in
  let signature = Rpki_crypto.Rsa.sign ~key:priv msg in
  let before = Rpki_crypto.Rsa.verification_count () in
  Alcotest.(check bool) "valid first" true (Valcache.verify vc ~key ~signature msg);
  Alcotest.(check bool) "valid replay" true (Valcache.verify vc ~key ~signature msg);
  Alcotest.(check bool) "invalid first" false (Valcache.verify vc ~key ~signature "other");
  Alcotest.(check bool) "invalid replay" false (Valcache.verify vc ~key ~signature "other");
  Alcotest.(check int) "two real verifications"
    2
    (Rpki_crypto.Rsa.verification_count () - before);
  let s = Valcache.stats vc in
  Alcotest.(check int) "checked" 2 s.Valcache.sig_checked;
  Alcotest.(check int) "saved" 2 s.Valcache.sig_saved

let () =
  Alcotest.run "valcache"
    [ ("transparency", [ prop_transparency ]);
      ("verdict-memo", [ Alcotest.test_case "memoizes both verdicts" `Quick test_verdict_memo ])
    ]
