(* Tests for the RRDP-style delta protocol. *)

open Rpki_repo

let fresh_point () =
  let pp = Pub_point.create ~uri:"rsync://x/repo" ~addr:0 ~host_asn:1 in
  Pub_point.put pp ~filename:"a.roa" "bytes-a";
  Pub_point.put pp ~filename:"b.cer" "bytes-b";
  pp

let files = Alcotest.(list (pair string string))

let test_initial_snapshot () =
  let pp = fresh_point () in
  let server = Rrdp.create pp in
  ignore (Rrdp.publish_now server);
  let client = Rrdp.create_client () in
  Alcotest.(check bool) "snapshot" true (Rrdp.sync client server = Rrdp.Full_snapshot);
  Alcotest.check files "content" (Pub_point.files pp) (Rrdp.client_files client);
  Alcotest.(check bool) "then up to date" true (Rrdp.sync client server = Rrdp.Up_to_date)

let test_incremental () =
  let pp = fresh_point () in
  let server = Rrdp.create pp in
  ignore (Rrdp.publish_now server);
  let client = Rrdp.create_client () in
  ignore (Rrdp.sync client server);
  (* one overwrite, one delete, one add *)
  Pub_point.put pp ~filename:"a.roa" "bytes-a2";
  Pub_point.delete pp ~filename:"b.cer";
  Pub_point.put pp ~filename:"c.mft" "bytes-c";
  (match Rrdp.publish_now server with
  | Some d ->
    Alcotest.(check int) "publishes" 2 (List.length d.Rrdp.publishes);
    Alcotest.(check int) "withdraws" 1 (List.length d.Rrdp.withdraws)
  | None -> Alcotest.fail "expected a delta");
  Alcotest.(check bool) "applied one delta" true (Rrdp.sync client server = Rrdp.Applied_deltas 1);
  Alcotest.check files "converged" (Pub_point.files pp) (Rrdp.client_files client)

let test_no_change_no_delta () =
  let pp = fresh_point () in
  let server = Rrdp.create pp in
  ignore (Rrdp.publish_now server);
  Alcotest.(check bool) "no delta" true (Rrdp.publish_now server = None)

let test_window_eviction_forces_snapshot () =
  let pp = fresh_point () in
  let server = Rrdp.create ~history_limit:3 pp in
  ignore (Rrdp.publish_now server);
  let client = Rrdp.create_client () in
  ignore (Rrdp.sync client server);
  for i = 0 to 9 do
    Pub_point.put pp ~filename:"a.roa" (Printf.sprintf "v%d" i);
    ignore (Rrdp.publish_now server)
  done;
  Alcotest.(check bool) "fell back to snapshot" true (Rrdp.sync client server = Rrdp.Full_snapshot);
  Alcotest.check files "converged" (Pub_point.files pp) (Rrdp.client_files client)

let test_session_change_forces_snapshot () =
  let pp = fresh_point () in
  let server = Rrdp.create ~session_seed:"one" pp in
  ignore (Rrdp.publish_now server);
  let client = Rrdp.create_client () in
  ignore (Rrdp.sync client server);
  (* server reset: new session over the same point *)
  let server2 = Rrdp.create ~session_seed:"two" pp in
  ignore (Rrdp.publish_now server2);
  Alcotest.(check bool) "snapshot on new session" true
    (Rrdp.sync client server2 = Rrdp.Full_snapshot)

let test_desync_detected () =
  let client = Rrdp.create_client ~serial:1 ~files:[ ("a.roa", "bytes-a") ] () in
  (* withdraw with a wrong hash *)
  let bad =
    { Rrdp.d_serial = 2; publishes = [];
      withdraws = [ { Rrdp.w_filename = "a.roa"; w_hash = String.make 32 'x' } ] }
  in
  Alcotest.(check bool) "hash mismatch raises" true
    (try
       Rrdp.apply_delta client bad;
       false
     with Rrdp.Desync _ -> true);
  (* serial gap *)
  let gap = { Rrdp.d_serial = 5; publishes = []; withdraws = [] } in
  Alcotest.(check bool) "serial gap raises" true
    (try
       Rrdp.apply_delta client gap;
       false
     with Rrdp.Desync _ -> true)

(* property: after any sequence of point mutations with a publish+sync per
   step, the client equals the point *)
let prop_converges =
  let arb =
    QCheck.make
      ~print:(fun ops -> string_of_int (List.length ops))
      QCheck.Gen.(
        list_size (int_bound 20)
          (oneof
             [ map2 (fun i v -> `Put (Printf.sprintf "f%d.roa" (abs i mod 6), Printf.sprintf "v%d" v)) int int;
               map (fun i -> `Del (Printf.sprintf "f%d.roa" (abs i mod 6))) int ]))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"client converges under arbitrary mutations" arb
       (fun ops ->
         let pp = Pub_point.create ~uri:"rsync://p/repo" ~addr:0 ~host_asn:1 in
         let server = Rrdp.create ~history_limit:4 pp in
         let client = Rrdp.create_client () in
         List.for_all
           (fun op ->
             (match op with
             | `Put (f, v) -> Pub_point.put pp ~filename:f v
             | `Del f -> Pub_point.delete pp ~filename:f);
             ignore (Rrdp.publish_now server);
             ignore (Rrdp.sync client server);
             Rrdp.client_files client = Pub_point.files pp)
           ops))

let () =
  Alcotest.run "rrdp"
    [ ( "protocol",
        [ Alcotest.test_case "initial snapshot" `Quick test_initial_snapshot;
          Alcotest.test_case "incremental delta" `Quick test_incremental;
          Alcotest.test_case "idempotent publish" `Quick test_no_change_no_delta;
          Alcotest.test_case "window eviction" `Quick test_window_eviction_forces_snapshot;
          Alcotest.test_case "session change" `Quick test_session_change_forces_snapshot;
          Alcotest.test_case "desync detection" `Quick test_desync_detected;
          prop_converges ] ) ]
