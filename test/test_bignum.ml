(* Tests for the arbitrary-precision arithmetic substrate. *)

open Rpki_bignum

let nat = Alcotest.testable (fun fmt n -> Nat.pp fmt n) Nat.equal

(* A generator of naturals with up to [bits] bits, built from a seed so
   shrinking stays meaningful. *)
let gen_nat_bits bits =
  QCheck.Gen.(
    map2
      (fun seed b ->
        let rng = Rpki_util.Rng.create seed in
        Nat.random_bits rng ~bits:(1 + (b mod bits)))
      int (int_bound (bits - 1)))

let arb_nat = QCheck.make ~print:Nat.to_decimal (gen_nat_bits 256)
let arb_nat_big = QCheck.make ~print:Nat.to_decimal (gen_nat_bits 2048)

let check_eq = Alcotest.check nat

(* --- unit tests --- *)

let test_of_to_int () =
  List.iter
    (fun i ->
      Alcotest.(check (option int)) (Printf.sprintf "roundtrip %d" i) (Some i)
        (Nat.to_int_opt (Nat.of_int i)))
    [ 0; 1; 2; 1073741823; 1073741824; 4611686018427387903 ];
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)))

let test_add_sub () =
  let a = Nat.of_decimal "999999999999999999999999999" in
  let b = Nat.of_decimal "1" in
  check_eq "add carries" (Nat.of_decimal "1000000000000000000000000000") (Nat.add a b);
  check_eq "sub borrows" a (Nat.sub (Nat.add a b) b);
  check_eq "a - a = 0" Nat.zero (Nat.sub a a);
  Alcotest.check_raises "negative result" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub b a))

let test_mul_known () =
  check_eq "squares"
    (Nat.of_decimal "15241578753238836750495351562536198787501905199875019052100")
    (Nat.mul
       (Nat.of_decimal "123456789012345678901234567890")
       (Nat.of_decimal "123456789012345678901234567890"));
  check_eq "by zero" Nat.zero (Nat.mul (Nat.of_decimal "99999") Nat.zero);
  check_eq "by one" (Nat.of_int 42) (Nat.mul (Nat.of_int 42) Nat.one)

let test_divmod_edges () =
  let a = Nat.of_decimal "987654321098765432109876543210" in
  let q, r = Nat.divmod a Nat.one in
  check_eq "div by 1: q" a q;
  check_eq "div by 1: r" Nat.zero r;
  let q, r = Nat.divmod a a in
  check_eq "self div: q" Nat.one q;
  check_eq "self div: r" Nat.zero r;
  let q, r = Nat.divmod Nat.zero a in
  check_eq "zero dividend: q" Nat.zero q;
  check_eq "zero dividend: r" Nat.zero r;
  let q, r = Nat.divmod (Nat.of_int 7) (Nat.of_int 9) in
  check_eq "smaller dividend: q" Nat.zero q;
  check_eq "smaller dividend: r" (Nat.of_int 7) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod a Nat.zero))

(* A value that exercises the Knuth-D "add back" path has a quotient digit
   estimate that is one too large; this classic pair does. *)
let test_divmod_addback () =
  let b30 = Nat.shift_left Nat.one 30 in
  let v = Nat.add (Nat.shift_left (Nat.sub b30 Nat.one) 30) (Nat.sub b30 Nat.one) in
  let u = Nat.sub (Nat.mul v (Nat.sub b30 Nat.one)) Nat.one in
  let q, r = Nat.divmod u v in
  check_eq "reconstruct" u (Nat.add (Nat.mul q v) r);
  Alcotest.(check bool) "r < v" true (Nat.lt r v)

let test_shift () =
  check_eq "left 0" (Nat.of_int 5) (Nat.shift_left (Nat.of_int 5) 0);
  check_eq "left 1" (Nat.of_int 10) (Nat.shift_left (Nat.of_int 5) 1);
  check_eq "left 100 right 100" (Nat.of_int 5)
    (Nat.shift_right (Nat.shift_left (Nat.of_int 5) 100) 100);
  check_eq "right beyond" Nat.zero (Nat.shift_right (Nat.of_int 5) 64);
  check_eq "cross limb" (Nat.shift_left Nat.one 30) (Nat.shift_left Nat.one 30)

let test_bits () =
  Alcotest.(check int) "num_bits 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "num_bits 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "num_bits 255" 8 (Nat.num_bits (Nat.of_int 255));
  Alcotest.(check int) "num_bits 2^100" 101 (Nat.num_bits (Nat.shift_left Nat.one 100));
  Alcotest.(check bool) "testbit" true (Nat.testbit (Nat.of_int 4) 2);
  Alcotest.(check bool) "testbit off" false (Nat.testbit (Nat.of_int 4) 1);
  Alcotest.(check bool) "testbit beyond" false (Nat.testbit (Nat.of_int 4) 90)

let test_strings () =
  check_eq "decimal" (Nat.of_int 1234567890) (Nat.of_decimal "1234567890");
  Alcotest.(check string) "to_decimal zero" "0" (Nat.to_decimal Nat.zero);
  Alcotest.(check string) "hex" "deadbeef" (Nat.to_hex (Nat.of_hex "deadbeef"));
  Alcotest.(check string) "odd hex" "f" (Nat.to_hex (Nat.of_hex "f"));
  check_eq "bytes" (Nat.of_int 0x010203) (Nat.of_bytes_be "\x01\x02\x03");
  Alcotest.(check string) "to_bytes" "\x01\x02\x03" (Nat.to_bytes_be (Nat.of_int 0x010203));
  Alcotest.(check string) "padded" "\x00\x00\x2a" (Nat.to_bytes_be_padded (Nat.of_int 42) 3);
  Alcotest.check_raises "too wide" (Invalid_argument "Nat.to_bytes_be_padded: too wide")
    (fun () -> ignore (Nat.to_bytes_be_padded (Nat.of_int 0x010203) 2));
  Alcotest.check_raises "bad digit" (Invalid_argument "Nat.of_decimal: bad digit") (fun () ->
      ignore (Nat.of_decimal "12a"))

let test_pow_mod () =
  let p = Nat.of_int 1000003 in
  check_eq "fermat" Nat.one (Nat.pow_mod ~base:(Nat.of_int 2) ~exp:(Nat.pred p) ~modulus:p);
  check_eq "exp 0" Nat.one (Nat.pow_mod ~base:(Nat.of_int 7) ~exp:Nat.zero ~modulus:p);
  check_eq "mod 1" Nat.zero (Nat.pow_mod ~base:(Nat.of_int 7) ~exp:(Nat.of_int 3) ~modulus:Nat.one);
  check_eq "known" (Nat.of_int 445)
    (Nat.pow_mod ~base:(Nat.of_int 4) ~exp:(Nat.of_int 13) ~modulus:(Nat.of_int 497))

(* Edge cases for the Montgomery path and its square-and-multiply fallback. *)
let test_pow_mod_variants () =
  let big_odd = Nat.succ (Nat.shift_left Nat.one 512) (* 2^512 + 1, odd *) in
  let big_even = Nat.shift_left Nat.one 200 in
  List.iter
    (fun (name, g, e, m) ->
      check_eq name
        (Nat.pow_mod_simple ~base:g ~exp:e ~modulus:m)
        (Nat.pow_mod ~base:g ~exp:e ~modulus:m))
    [ ("rsa-shaped", Nat.of_decimal "123456789123456789", Nat.of_int 65537, big_odd);
      ("even modulus", Nat.of_int 12345, Nat.of_int 65537, big_even);
      ("base 0", Nat.zero, Nat.of_int 65537, big_odd);
      ("base multiple of m", Nat.shift_left big_odd 7, Nat.of_int 65537, big_odd);
      ("exp 0 odd m", Nat.of_int 9, Nat.zero, big_odd);
      ("exp 1", Nat.of_int 9, Nat.one, big_odd);
      ("single-limb odd m", Nat.of_int 123456, Nat.of_int 54321, Nat.of_int 1000003);
      ("all-ones exp", Nat.of_int 3, Nat.pred (Nat.shift_left Nat.one 64), big_odd) ];
  check_eq "simple mod 1" Nat.zero
    (Nat.pow_mod_simple ~base:(Nat.of_int 7) ~exp:(Nat.of_int 3) ~modulus:Nat.one);
  Alcotest.check_raises "zero modulus" Division_by_zero (fun () ->
      ignore (Nat.pow_mod ~base:Nat.one ~exp:Nat.one ~modulus:Nat.zero));
  Alcotest.check_raises "zero modulus simple" Division_by_zero (fun () ->
      ignore (Nat.pow_mod_simple ~base:Nat.one ~exp:Nat.one ~modulus:Nat.zero))

let test_gcd () =
  check_eq "gcd" (Nat.of_int 6) (Nat.gcd (Nat.of_int 48) (Nat.of_int 18));
  check_eq "gcd with zero" (Nat.of_int 5) (Nat.gcd (Nat.of_int 5) Nat.zero);
  check_eq "coprime" Nat.one (Nat.gcd (Nat.of_int 17) (Nat.of_int 31))

let test_zint () =
  let z = Zint.of_int in
  Alcotest.(check bool) "neg add" true (Zint.equal (Zint.add (z 5) (z (-8))) (z (-3)));
  Alcotest.(check bool) "mul signs" true (Zint.equal (Zint.mul (z (-4)) (z (-5))) (z 20));
  Alcotest.(check bool) "sub" true (Zint.equal (Zint.sub (z 3) (z 10)) (z (-7)));
  Alcotest.(check bool) "compare" true (Zint.compare (z (-1)) (z 1) < 0);
  check_eq "erem positive" (Nat.of_int 4) (Zint.erem (z (-3)) (Nat.of_int 7));
  check_eq "erem of pos" (Nat.of_int 3) (Zint.erem (z 10) (Nat.of_int 7))

let test_mod_inverse () =
  (match Zint.mod_inverse (Nat.of_int 3) ~modulus:(Nat.of_int 11) with
  | Some inv -> check_eq "3^-1 mod 11" (Nat.of_int 4) inv
  | None -> Alcotest.fail "expected inverse");
  Alcotest.(check bool) "non-invertible" true
    (Zint.mod_inverse (Nat.of_int 6) ~modulus:(Nat.of_int 9) = None)

let test_primes () =
  let rng = Rpki_util.Rng.create 99 in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool)
        (string_of_int n) expect
        (Prime.is_probably_prime rng (Nat.of_int n)))
    [ (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (1000003, true); (1000001, false) ];
  let p = Prime.generate rng ~bits:64 in
  Alcotest.(check int) "generated width" 64 (Nat.num_bits p);
  Alcotest.(check bool) "generated is prime" true (Prime.is_probably_prime rng p)

(* --- properties --- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

let props =
  [ prop "add commutative" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.add a b) (Nat.add b a));
    prop "add associative" (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
        Nat.equal (Nat.add (Nat.add a b) c) (Nat.add a (Nat.add b c)));
    prop "sub inverts add" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal a (Nat.sub (Nat.add a b) b));
    prop "mul distributes" (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    prop "divmod reconstructs" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        QCheck.assume (not (Nat.is_zero b));
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.lt r b);
    prop "karatsuba matches schoolbook" (QCheck.pair arb_nat_big arb_nat_big) (fun (a, b) ->
        Nat.equal (Nat.mul a b) (Nat.mul_schoolbook a b));
    prop "decimal roundtrip" arb_nat (fun a -> Nat.equal a (Nat.of_decimal (Nat.to_decimal a)));
    prop "bytes roundtrip" arb_nat (fun a -> Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)));
    prop "shift roundtrip" (QCheck.pair arb_nat (QCheck.int_bound 100)) (fun (a, k) ->
        Nat.equal a (Nat.shift_right (Nat.shift_left a k) k));
    prop "shift_left is mul by power" (QCheck.pair arb_nat (QCheck.int_bound 80)) (fun (a, k) ->
        Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.shift_left Nat.one k)));
    prop "compare consistent with sub" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        if Nat.le a b then Nat.equal b (Nat.add a (Nat.sub b a)) else Nat.lt b a);
    prop "egcd bezout" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        QCheck.assume (not (Nat.is_zero a) && not (Nat.is_zero b));
        let g, x, y = Zint.egcd a b in
        let lhs = Zint.add (Zint.mul (Zint.of_nat a) x) (Zint.mul (Zint.of_nat b) y) in
        Zint.equal lhs (Zint.of_nat g) && Nat.equal g (Nat.gcd a b));
    prop "mod_inverse correct" (QCheck.pair arb_nat arb_nat) (fun (a, m) ->
        QCheck.assume (Nat.compare m Nat.two > 0);
        match Zint.mod_inverse a ~modulus:m with
        | None -> not (Nat.equal (Nat.gcd (Nat.rem a m) m) Nat.one) || Nat.is_zero (Nat.rem a m)
        | Some inv -> Nat.equal (Nat.rem (Nat.mul a inv) m) Nat.one);
    prop "random below bound" (QCheck.pair QCheck.int arb_nat) (fun (seed, bound) ->
        QCheck.assume (not (Nat.is_zero bound));
        let rng = Rpki_util.Rng.create seed in
        Nat.lt (Nat.random rng ~bound) bound);
    (* Windowed-Montgomery pow_mod agrees with square-and-multiply on random
       base/exp/modulus — even moduli exercise the fallback dispatch. *)
    prop "pow_mod matches square-and-multiply"
      (QCheck.triple arb_nat arb_nat arb_nat_big)
      (fun (g, e, m) ->
        QCheck.assume (not (Nat.is_zero m));
        Nat.equal
          (Nat.pow_mod ~base:g ~exp:e ~modulus:m)
          (Nat.pow_mod_simple ~base:g ~exp:e ~modulus:m));
    prop "pow_mod odd modulus forced"
      (QCheck.triple arb_nat arb_nat arb_nat_big)
      (fun (g, e, m) ->
        let m = if Nat.testbit m 0 then m else Nat.succ m in
        Nat.equal
          (Nat.pow_mod ~base:g ~exp:e ~modulus:m)
          (Nat.pow_mod_simple ~base:g ~exp:e ~modulus:m)) ]

let () =
  Alcotest.run "bignum"
    [ ( "nat-unit",
        [ Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul known values" `Quick test_mul_known;
          Alcotest.test_case "divmod edges" `Quick test_divmod_edges;
          Alcotest.test_case "divmod add-back path" `Quick test_divmod_addback;
          Alcotest.test_case "shifts" `Quick test_shift;
          Alcotest.test_case "bit queries" `Quick test_bits;
          Alcotest.test_case "string conversions" `Quick test_strings;
          Alcotest.test_case "pow_mod" `Quick test_pow_mod;
          Alcotest.test_case "pow_mod montgomery edges" `Quick test_pow_mod_variants;
          Alcotest.test_case "gcd" `Quick test_gcd ] );
      ( "zint-unit",
        [ Alcotest.test_case "signed arithmetic" `Quick test_zint;
          Alcotest.test_case "mod_inverse" `Quick test_mod_inverse ] );
      ("primes", [ Alcotest.test_case "miller-rabin" `Quick test_primes ]);
      ("properties", props) ]
