(* A long-horizon integration test: one simulated operational year of the
   model RPKI, with refresh cycles, renewals, new issuance, a key rollover,
   a transient fault, an overt revocation and a stealthy manipulation — the
   kind of churn the paper says makes abusive behaviour hard to tell from
   normal operations.  At every checkpoint the relying party's view must be
   exactly what the ledger of events predicts, and the monitor's alarms must
   fire for the manipulations and only for them. *)

open Rpki_core
open Rpki_repo
open Rpki_ip

let vrps_of (m : Model.t) rp ~now =
  let r = Relying_party.sync rp ~now ~universe:m.Model.universe () in
  (List.length r.Relying_party.vrps, List.length r.Relying_party.issues)

let refresh_all (m : Model.t) ~now =
  List.iter
    (fun a -> Authority.refresh a ~now)
    [ m.Model.arin; m.Model.sprint; m.Model.etb; m.Model.continental ]

let renew_all (m : Model.t) ~now =
  List.iter
    (fun (a : Authority.t) ->
      List.iter (fun (f, _) -> ignore (Authority.renew_roa a ~filename:f ~now)) (Authority.roas a))
    [ m.Model.arin; m.Model.sprint; m.Model.etb; m.Model.continental ]

let test_operational_year () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  let monitor_alarms = ref 0 in
  let last_snapshot = ref (Rpki_monitor.Monitor.take ~now:0 m.Model.universe) in
  let observe ~now =
    let snap = Rpki_monitor.Monitor.take ~now m.Model.universe in
    let alerts = Rpki_monitor.Monitor.diff ~before:!last_snapshot ~after:snap in
    last_snapshot := snap;
    monitor_alarms := !monitor_alarms + List.length (Rpki_monitor.Monitor.alarms alerts)
  in
  (* month 0: steady state *)
  let n, issues = vrps_of m rp ~now:1 in
  Alcotest.(check int) "m0 vrps" 8 n;
  Alcotest.(check int) "m0 issues" 0 issues;
  (* months 1-5: routine refresh every ~10 days keeps everything green *)
  for month = 1 to 5 do
    let now = month * Rtime.month in
    refresh_all m ~now;
    observe ~now;
    let n, issues = vrps_of m rp ~now in
    Alcotest.(check int) (Printf.sprintf "m%d vrps" month) 8 n;
    Alcotest.(check int) (Printf.sprintf "m%d issues" month) 0 issues
  done;
  Alcotest.(check int) "routine churn: no alarms" 0 !monitor_alarms;
  (* month 6: ETB grows — a new customer ROA *)
  let t6 = 6 * Rtime.month in
  let _ =
    Authority.issue_simple_roa m.Model.etb ~asid:65010 ~prefix:(V4.p "63.170.64.0/18") ~now:t6 ()
  in
  refresh_all m ~now:t6;
  observe ~now:t6;
  let n, _ = vrps_of m rp ~now:t6 in
  Alcotest.(check int) "m6 vrps grew" 9 n;
  (* month 7: Sprint rolls its key; nothing breaks, nothing alarms *)
  let t7 = 7 * Rtime.month in
  Authority.roll_key m.Model.sprint ~now:t7;
  refresh_all m ~now:t7;
  observe ~now:t7;
  Alcotest.(check int) "rollover: still no alarms" 0 !monitor_alarms;
  let n, issues = vrps_of m rp ~now:t7 in
  Alcotest.(check int) "m7 vrps" 9 n;
  Alcotest.(check int) "m7 issues" 0 issues;
  (* month 8: a disk fault corrupts a ROA, found and repaired next day *)
  let t8 = 8 * Rtime.month in
  refresh_all m ~now:t8;
  let fault = Fault.corrupt_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_cb_26 () in
  let n, issues = vrps_of m rp ~now:t8 in
  Alcotest.(check int) "m8 fault: one vrp lost" 8 n;
  Alcotest.(check bool) "m8 fault: issues visible" true (issues > 0);
  Option.iter Fault.repair fault;
  let n, issues = vrps_of m rp ~now:(t8 + Rtime.day) in
  Alcotest.(check int) "m8 repaired" 9 n;
  Alcotest.(check int) "m8 clean" 0 issues;
  (* month 9: a customer leaves; its ROA is revoked overtly *)
  let t9 = 9 * Rtime.month in
  refresh_all m ~now:t9;
  Authority.revoke_roa m.Model.continental ~filename:m.Model.roa_cb_28 ~now:t9;
  observe ~now:t9;
  Alcotest.(check int) "overt revocation: still no alarms" 0 !monitor_alarms;
  let n, _ = vrps_of m rp ~now:t9 in
  Alcotest.(check int) "m9 vrps" 8 n;
  (* month 10: annual renewals before certificates expire *)
  let t10 = 10 * Rtime.month in
  renew_all m ~now:t10;
  refresh_all m ~now:t10;
  observe ~now:t10;
  Alcotest.(check int) "renewals: still no alarms" 0 !monitor_alarms;
  (* month 11: Sprint turns coercive and whacks Continental's /22 ROA *)
  let t11 = 11 * Rtime.month in
  let plan =
    Rpki_attack.Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
      ~target_filename:m.Model.roa_target22
  in
  ignore (Rpki_attack.Whack.execute ~manipulator:m.Model.sprint plan ~now:t11);
  observe ~now:t11;
  Alcotest.(check bool) "the manipulation alarms" true (!monitor_alarms > 0);
  let n, _ = vrps_of m rp ~now:t11 in
  Alcotest.(check int) "m11: exactly the target gone" 7 n;
  (* month 12: a year in.  Continental, unaware of the whack, renews all
     five of its ROAs — two of them (the whacked /22 and the /20 whose space
     was carved) now overclaim against its shrunken RC, which is exactly the
     lingering evidence a victim would eventually notice. *)
  let t12 = 12 * Rtime.month in
  renew_all m ~now:t12;
  refresh_all m ~now:t12;
  let n, issues = vrps_of m rp ~now:(t12 + Rtime.day) in
  Alcotest.(check int) "m12 vrps" 7 n;
  Alcotest.(check int) "m12: two overclaim issues from the whack aftermath" 2 issues

let () =
  Alcotest.run "lifecycle"
    [ ("operational-year", [ Alcotest.test_case "twelve months" `Slow test_operational_year ]) ]
