(* Tests for the mitigation features implementing the paper's open problems:
   key rollover (RFC 6489), mirrored publication points
   (draft-ietf-sidr-multiple-publication-points, the paper's ref [16]) and
   the Suspenders-style grace window (ref [25]). *)

open Rpki_core
open Rpki_repo
open Rpki_sim
open Rpki_bgp
open Rpki_ip

let sync (m : Model.t) rp ~now = Relying_party.sync rp ~now ~universe:m.Model.universe ()

(* --- RFC 6489 key rollover --- *)

let test_rollover_child () =
  let m = Model.build () in
  let rp = Model.relying_party m in
  let old_key = (Authority.key m.Model.sprint).Rpki_crypto.Rsa.public in
  Authority.roll_key m.Model.sprint ~now:2;
  Alcotest.(check bool) "key changed" false
    (Rpki_crypto.Rsa.equal_public old_key (Authority.key m.Model.sprint).Rpki_crypto.Rsa.public);
  (* the whole subtree must still validate: Sprint's children were re-signed *)
  let r = sync m rp ~now:3 in
  Alcotest.(check int) "all eight VRPs survive" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check int) "no issues" 0 (List.length r.Relying_party.issues)

let test_rollover_trust_anchor () =
  let m = Model.build () in
  Authority.roll_key m.Model.arin ~now:2;
  (* the old TAL no longer matches: relying parties must re-provision *)
  let rp_stale = Model.relying_party m in
  (* the stale RP was created after rollover, so its TAL is current... build
     one with the OLD tal instead *)
  ignore rp_stale;
  let fresh_rp =
    Relying_party.create ~name:"fresh" ~asn:7018
      ~tals:[ Relying_party.tal_of_authority m.Model.arin ]
      ()
  in
  let r = sync m fresh_rp ~now:3 in
  Alcotest.(check int) "fresh TAL validates everything" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check int) "no issues" 0 (List.length r.Relying_party.issues)

let test_rollover_is_benign_to_monitor () =
  let m = Model.build () in
  let before = Rpki_monitor.Monitor.take ~now:1 m.Model.universe in
  Authority.roll_key m.Model.etb ~now:2;
  let after = Rpki_monitor.Monitor.take ~now:2 m.Model.universe in
  let alerts = Rpki_monitor.Monitor.diff ~before ~after in
  (* resources never changed: no shrink alarms, no stealth-removal alarms *)
  Alcotest.(check int) "no alarms on rollover" 0
    (List.length (Rpki_monitor.Monitor.alarms alerts))

let test_rollover_revokes_old_serial () =
  let m = Model.build () in
  let old_serial = (Authority.cert m.Model.etb).Cert.serial in
  Authority.roll_key m.Model.etb ~now:2;
  Alcotest.(check bool) "old serial revoked by Sprint" true
    (List.mem old_serial (Authority.revoked m.Model.sprint))

(* --- mirrored publication points --- *)

let test_mirror_serves_when_primary_down () =
  let m = Model.build () in
  let primary = (Authority.pub m.Model.continental) in
  let mirror =
    Pub_point.create ~uri:"rsync://mirror.example/continental"
      ~addr:(V4.addr_of_string_exn "63.161.200.1") ~host_asn:Model.as_sprint
  in
  Universe.add_mirror m.Model.universe ~of_uri:(Pub_point.uri primary) mirror;
  Universe.refresh_mirrors m.Model.universe;
  let rp = Model.relying_party ~use_stale:false m in
  let unreachable (pp : Pub_point.t) = (Pub_point.uri pp) <> (Pub_point.uri primary) in
  let r =
    Relying_party.sync rp ~now:1 ~universe:m.Model.universe ~reachable:unreachable ()
  in
  Alcotest.(check int) "all VRPs via mirror" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check bool) "mirror fetch recorded" true
    (List.exists (fun (_, st) -> st = Relying_party.Fetched_mirror) r.Relying_party.fetches)

let test_mirror_lags_until_refreshed () =
  let m = Model.build () in
  let primary = (Authority.pub m.Model.continental) in
  let mirror =
    Pub_point.create ~uri:"rsync://mirror.example/continental"
      ~addr:(V4.addr_of_string_exn "63.161.200.1") ~host_asn:Model.as_sprint
  in
  Universe.add_mirror m.Model.universe ~of_uri:(Pub_point.uri primary) mirror;
  (* not refreshed: the mirror is empty *)
  Alcotest.(check int) "empty before refresh" 0 (List.length (Pub_point.files mirror));
  Universe.refresh_mirrors m.Model.universe;
  Alcotest.(check int) "populated after refresh"
    (List.length (Pub_point.files primary))
    (List.length (Pub_point.files mirror))

let test_mirror_requires_primary () =
  let m = Model.build () in
  let mirror =
    Pub_point.create ~uri:"rsync://mirror.example/x" ~addr:0 ~host_asn:1
  in
  Alcotest.(check bool) "unknown primary rejected" true
    (try
       Universe.add_mirror m.Model.universe ~of_uri:"rsync://nowhere/repo" mirror;
       false
     with Invalid_argument _ -> true)

let test_mirror_breaks_se7 () =
  (* the Section 6 circularity dissolves when the repository is also served
     from address space whose route does not depend on its own objects *)
  let probe hist t =
    List.assoc "continental-repo" (List.nth hist (t - 1)).Loop.probe_results
  in
  let _, plain = Loop.run_section6 ~policy:Policy.Drop_invalid () in
  let _, mirrored = Loop.run_section6 ~policy:Policy.Drop_invalid ~mirrored:true () in
  Alcotest.(check bool) "plain: stuck at t7" false (probe plain 7);
  Alcotest.(check bool) "mirrored: down during the fault" false (probe mirrored 3);
  Alcotest.(check bool) "mirrored: recovered at t4" true (probe mirrored 4);
  Alcotest.(check bool) "mirrored: healthy at t7" true (probe mirrored 7)

(* --- Suspenders-style grace window --- *)

let test_grace_masks_missing_roa () =
  let m = Model.build () in
  let rp = Model.relying_party ~grace:5 m in
  let _ = sync m rp ~now:1 in
  let _ = Fault.delete_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_target22 in
  let r = sync m rp ~now:2 in
  (* within the window the disappeared VRP is held: Side Effect 6 masked *)
  Alcotest.(check int) "still eight VRPs" 8 (List.length r.Relying_party.vrps);
  Alcotest.(check bool) "grace hold reported" true
    (List.exists
       (fun (i : Relying_party.issue) ->
         String.length i.Relying_party.reason >= 5 && String.sub i.Relying_party.reason 0 5 = "grace")
       r.Relying_party.issues);
  (* past the window the loss becomes real *)
  let r2 = sync m rp ~now:8 in
  Alcotest.(check int) "seven after expiry" 7 (List.length r2.Relying_party.vrps)

let test_grace_delays_legitimate_revocation () =
  (* the cost of the fail-safe: a legitimately revoked ROA lingers *)
  let m = Model.build () in
  let rp = Model.relying_party ~grace:5 m in
  let _ = sync m rp ~now:1 in
  Authority.revoke_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2;
  let r = sync m rp ~now:2 in
  Alcotest.(check int) "revoked VRP still held" 8 (List.length r.Relying_party.vrps);
  let r2 = sync m rp ~now:8 in
  Alcotest.(check int) "gone after the window" 7 (List.length r2.Relying_party.vrps)

let test_grace_prevents_se7 () =
  let probe hist t =
    List.assoc "continental-repo" (List.nth hist (t - 1)).Loop.probe_results
  in
  let _, hist = Loop.run_section6 ~policy:Policy.Drop_invalid ~grace:10 () in
  (* the held VRP keeps the repository route valid through the fault, so the
     RP re-fetches the repaired ROA before the hold expires *)
  List.iter (fun t -> Alcotest.(check bool) "up" true (probe hist t)) [ 1; 3; 4; 7 ]

let test_grace_flush_forgets () =
  let m = Model.build () in
  let rp = Model.relying_party ~grace:5 m in
  let _ = sync m rp ~now:1 in
  Relying_party.flush_cache rp;
  let _ = Fault.delete_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_target22 in
  let r = sync m rp ~now:2 in
  Alcotest.(check int) "no memory after flush" 7 (List.length r.Relying_party.vrps)

let () =
  Alcotest.run "mitigations"
    [ ( "key-rollover",
        [ Alcotest.test_case "child rollover preserves validity" `Quick test_rollover_child;
          Alcotest.test_case "trust-anchor rollover" `Quick test_rollover_trust_anchor;
          Alcotest.test_case "benign to the monitor" `Quick test_rollover_is_benign_to_monitor;
          Alcotest.test_case "old serial revoked" `Quick test_rollover_revokes_old_serial ] );
      ( "mirrors",
        [ Alcotest.test_case "serves when primary down" `Quick test_mirror_serves_when_primary_down;
          Alcotest.test_case "lags until refreshed" `Quick test_mirror_lags_until_refreshed;
          Alcotest.test_case "requires a primary" `Quick test_mirror_requires_primary;
          Alcotest.test_case "breaks the SE7 loop" `Quick test_mirror_breaks_se7 ] );
      ( "grace",
        [ Alcotest.test_case "masks SE6" `Quick test_grace_masks_missing_roa;
          Alcotest.test_case "delays legitimate revocation" `Quick
            test_grace_delays_legitimate_revocation;
          Alcotest.test_case "prevents SE7" `Quick test_grace_prevents_se7;
          Alcotest.test_case "flush forgets" `Quick test_grace_flush_forgets ] ) ]
