(* Tests for the multiplexed RTR serving plane (Rpki_rtr.Server).

   The load-bearing property: a server fanning one cache out to N sessions
   is observationally identical to N independent caches each fed the same
   publish sequence and each serving one router — same final VRP sets, same
   serials, same Cache Reset decisions when serials fall off the delta
   window, holds visible identically.  The server is an optimisation
   (encode-once buffers, batched notify, Domains) and must not be a
   semantic change. *)

open Rpki_core
open Rpki_rtr
open Rpki_ip

let vrp_list = Alcotest.testable
    (fun fmt l -> Format.pp_print_string fmt (String.concat " " (List.map Vrp.to_string l)))
    (List.equal Vrp.equal)

(* --- the reference model: one private cache + router per session --- *)

(* Drive one router against its private cache exactly the way
   [Server.flush] drives a session: serial query while the session holds,
   Cache Reset -> Reset Query when the window closed.  Returns how many
   Cache Resets the router took (0 or 1). *)
let ref_sync cache router =
  match Session.router_session router with
  | Some sid when sid = Session.cache_session_id cache -> (
    let q =
      Pdu.encode
        (Pdu.Serial_query { session_id = sid; serial = Session.router_serial router })
    in
    match Session.apply_response router (Session.serve cache q) with
    | `Synced -> 0
    | `Reset_required -> (
      Session.reset_router router;
      match
        Session.apply_response router (Session.serve cache (Pdu.encode Pdu.Reset_query))
      with
      | `Synced -> 1
      | `Reset_required -> Alcotest.fail "reference: reset loop"))
  | _ -> (
    Session.reset_router router;
    match
      Session.apply_response router (Session.serve cache (Pdu.encode Pdu.Reset_query))
    with
    | `Synced -> 0
    | `Reset_required -> Alcotest.fail "reference: reset on fresh sync")

(* --- scenario generator --- *)

let pool =
  [| V4.p "10.0.0.0/8"; V4.p "10.1.0.0/16"; V4.p "192.0.2.0/24"; V4.p "198.51.100.0/24" |]

type op =
  | Publish of Vrp.t list
  | Hold of int * Vrp.t list (* pool index, pinned set *)
  | Release of int
  | Attach
  | Flush

let vrp_gen =
  QCheck.Gen.(
    map2
      (fun i asn -> Vrp.make pool.(i mod Array.length pool) (1 + (abs asn mod 40)))
      (int_bound (Array.length pool - 1))
      int)

let op_gen =
  QCheck.Gen.(
    frequency
      [ (5, map (fun l -> Publish l) (list_size (int_bound 8) vrp_gen));
        (1, map2 (fun i l -> Hold (i, l)) (int_bound (Array.length pool - 1))
             (list_size (int_bound 3) vrp_gen));
        (1, map (fun i -> Release i) (int_bound (Array.length pool - 1)));
        (2, return Attach);
        (4, return Flush) ])

let print_op = function
  | Publish l -> Printf.sprintf "publish[%d]" (List.length l)
  | Hold (i, l) -> Printf.sprintf "hold[%d,%d]" i (List.length l)
  | Release i -> Printf.sprintf "release[%d]" i
  | Attach -> "attach"
  | Flush -> "flush"

let scenario_arb =
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 10 40) op_gen)

(* Replay [ops] into a server and into the reference model; compare every
   session to its private router after the final flush.  A small history
   limit makes stale sessions fall off the delta window, so the Cache Reset
   path is exercised, not just the happy delta path. *)
let check_observational_identity ?(domains = 1) ops =
  let n_max = 6 and history_limit = 4 in
  let server = Server.create ~history_limit () in
  let refs =
    Array.init n_max (fun _ ->
        (Session.create_cache ~history_limit (), Session.create_router (), ref 0))
  in
  let sessions = ref [] in (* (server session, reference index), newest first *)
  let attached = ref 0 in
  let sync_all () =
    ignore (Server.flush ~domains server);
    List.iter
      (fun (_, i) ->
        let c, r, resets = refs.(i) in
        resets := !resets + ref_sync c r)
      !sessions
  in
  List.iter
    (fun op ->
      match op with
      | Publish l ->
        Server.publish server l;
        Array.iter (fun (c, _, _) -> Session.publish c l) refs
      | Hold (i, l) ->
        Server.hold server ~prefix:pool.(i) ~vrps:l;
        Array.iter (fun (c, _, _) -> Session.hold c ~prefix:pool.(i) ~vrps:l) refs
      | Release i ->
        Server.release server ~prefix:pool.(i);
        Array.iter (fun (c, _, _) -> Session.release c ~prefix:pool.(i)) refs
      | Attach ->
        if !attached < n_max then begin
          sessions := (Server.attach server, !attached) :: !sessions;
          incr attached
        end
      | Flush -> sync_all ())
    ops;
  sync_all ();
  if not (Server.all_synced server) then
    QCheck.Test.fail_reportf "server not all_synced after final flush";
  List.iter
    (fun (s, i) ->
      let _, r, resets = refs.(i) in
      if not (List.equal Vrp.equal (Server.session_vrps s) (Session.router_vrps r))
      then QCheck.Test.fail_reportf "session %d: VRP sets differ" i;
      if Server.session_serial s <> Session.router_serial r then
        QCheck.Test.fail_reportf "session %d: serial %d vs reference %d" i
          (Server.session_serial s) (Session.router_serial r);
      if Server.session_resets s <> !resets then
        QCheck.Test.fail_reportf "session %d: %d resets vs reference %d" i
          (Server.session_resets s) !resets;
      if not (Server.session_synced server s) then
        QCheck.Test.fail_reportf "session %d not synced" i)
    !sessions;
  (* the shared cache itself must agree with any of the private ones *)
  let c0, _, _ = refs.(0) in
  Session.cache_serial (Server.cache server) = Session.cache_serial c0
  && List.equal Vrp.equal
       (Session.cache_vrps (Server.cache server))
       (Session.cache_vrps c0)

let prop_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"multiplexed server == N independent caches" scenario_arb
       check_observational_identity)

let prop_identity_domains =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"multiplexed server == N independent caches (4 domains)" scenario_arb
       (check_observational_identity ~domains:4))

(* --- unit tests --- *)

let v s asn = Vrp.make (V4.p s) asn

let seeded ?(sessions = 2) () =
  let server = Server.create () in
  let ss = List.init sessions (fun _ -> Server.attach server) in
  Server.publish server [ v "10.0.0.0/8" 1 ];
  ignore (Server.flush server);
  (server, ss)

let test_notify_coalescing () =
  let server, _ = seeded () in
  let before = (Server.stats server).Server.notify_batches in
  Server.publish server [ v "10.0.0.0/8" 1; v "192.0.2.0/24" 2 ];
  Server.publish server [ v "192.0.2.0/24" 2 ];
  Server.publish server [ v "198.51.100.0/24" 3 ];
  Alcotest.(check bool) "pending" true (Server.pending server);
  let rep = Server.flush server in
  Alcotest.(check int) "one batch" (before + 1) (Server.stats server).Server.notify_batches;
  Alcotest.(check int) "two bumps coalesced" 2 rep.Server.fr_coalesced;
  Alcotest.(check int) "both sessions notified" 2 rep.Server.fr_notified;
  Alcotest.(check bool) "drained" false (Server.pending server);
  (* a flush with nothing pending is free: zero report, no traffic *)
  let sent = (Server.stats server).Server.bytes_sent in
  let rep2 = Server.flush server in
  Alcotest.(check int) "no-op notify" 0 rep2.Server.fr_notified;
  Alcotest.(check int) "no-op bytes" sent (Server.stats server).Server.bytes_sent

let test_encode_once () =
  (* the same publish schedule against 1 session and against 64 must encode
     exactly the same bytes; only delivery grows with the session count *)
  let run n =
    let server = Server.create () in
    let _ = List.init n (fun _ -> Server.attach server) in
    Server.publish server [ v "10.0.0.0/8" 1 ];
    ignore (Server.flush server);
    Server.publish server [ v "10.0.0.0/8" 1; v "192.0.2.0/24" 2 ];
    ignore (Server.flush server);
    Server.stats server
  in
  let one = run 1 and many = run 64 in
  Alcotest.(check int) "bytes encoded flat" one.Server.bytes_encoded many.Server.bytes_encoded;
  Alcotest.(check int) "encode calls flat" one.Server.encode_calls many.Server.encode_calls;
  Alcotest.(check int) "replays scale" (64 * one.Server.replays) many.Server.replays;
  Alcotest.(check bool) "delivery scales" true
    (many.Server.bytes_sent > 32 * one.Server.bytes_sent)

let test_base_mismatch () =
  let server, _ = seeded () in
  let good = Session.feed_fingerprint (Server.cache server) in
  let diff = { Vrp.added = [ v "192.0.2.0/24" 9 ]; removed = [] } in
  (match Server.publish_diff ~expect_base:(Int64.lognot good) server diff with
  | () -> Alcotest.fail "expected Base_mismatch"
  | exception Session.Base_mismatch { expected; actual } ->
    Alcotest.(check bool) "mismatch reported" true (expected <> actual));
  (* the guarded failure must not have corrupted anything *)
  Server.publish_diff ~expect_base:good server diff;
  ignore (Server.flush server);
  Alcotest.(check bool) "recovers" true (Server.all_synced server)

let test_detach () =
  let server, ss = seeded ~sessions:3 () in
  (match ss with
  | s :: _ ->
    Server.detach server s;
    Alcotest.(check int) "count drops" 2 (Server.session_count server);
    Alcotest.(check bool) "detached not synced" false (Server.session_synced server s)
  | [] -> assert false);
  Server.publish server [ v "198.51.100.0/24" 7 ];
  let rep = Server.flush server in
  Alcotest.(check int) "only live sessions notified" 2 rep.Server.fr_notified;
  Alcotest.(check bool) "rest converge" true (Server.all_synced server)

let test_restore_resets_sessions () =
  let server, ss = seeded () in
  Server.restore server ~serial:42 ~vrps:[ v "10.0.0.0/8" 5 ];
  let rep = Server.flush server in
  Alcotest.(check int) "every session reset" 2 rep.Server.fr_resets;
  List.iter
    (fun s ->
      Alcotest.(check int) "serial continues" 42 (Server.session_serial s);
      Alcotest.check vrp_list "restored set" [ v "10.0.0.0/8" 5 ] (Server.session_vrps s))
    ss

let test_domains_parity () =
  (* the same schedule on 1 domain and on 4 must leave identical stats and
     identical session states — the fan-out is an implementation detail *)
  let run domains =
    let server = Server.create ~history_limit:2 () in
    let ss = List.init 32 (fun _ -> Server.attach server) in
    for i = 1 to 6 do
      Server.publish server (List.init (1 + (i mod 3)) (fun j -> v "10.0.0.0/8" (10 + i + j)));
      if i mod 2 = 0 then ignore (Server.flush ~domains server)
    done;
    Server.hold server ~prefix:(V4.p "10.0.0.0/8") ~vrps:[ v "10.0.0.0/8" 99 ];
    ignore (Server.flush ~domains server);
    (Server.stats server, List.map Server.session_vrps ss)
  in
  let st1, vrps1 = run 1 and st4, vrps4 = run 4 in
  Alcotest.(check bool) "stats identical" true (st1 = st4);
  Alcotest.(check bool) "session states identical" true
    (List.for_all2 (List.equal Vrp.equal) vrps1 vrps4)

let () =
  Alcotest.run "rtr-server"
    [ ( "server",
        [ Alcotest.test_case "notify coalescing" `Quick test_notify_coalescing;
          Alcotest.test_case "encode once" `Quick test_encode_once;
          Alcotest.test_case "base mismatch" `Quick test_base_mismatch;
          Alcotest.test_case "detach" `Quick test_detach;
          Alcotest.test_case "restore resets sessions" `Quick test_restore_resets_sessions;
          Alcotest.test_case "domains parity" `Quick test_domains_parity ] );
      ("property", [ prop_identity; prop_identity_domains ]) ]
