(* Tests for the monitoring/detection layer. *)

open Rpki_repo
open Rpki_attack
open Rpki_monitor

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has_alert ?severity pattern alerts =
  List.exists
    (fun (a : Monitor.alert) ->
      contains a.Monitor.what pattern
      && match severity with None -> true | Some s -> a.Monitor.severity = s)
    alerts

let observe f =
  let m = Model.build () in
  let before = Monitor.take ~now:1 m.Model.universe in
  f m;
  let after = Monitor.take ~now:2 m.Model.universe in
  Monitor.diff ~before ~after

let test_quiet_when_nothing_happens () =
  let alerts = observe (fun _ -> ()) in
  Alcotest.(check int) "silent" 0 (List.length alerts)

let test_benign_renewal_quiet () =
  let alerts = observe (fun m -> ignore (Authority.renew_roa m.Model.etb ~filename:m.Model.roa_etb ~now:2)) in
  Alcotest.(check int) "no alarms" 0 (List.length (Monitor.alarms alerts))

let test_refresh_quiet () =
  let alerts = observe (fun m -> Authority.refresh m.Model.sprint ~now:2) in
  Alcotest.(check int) "no alerts at all" 0 (List.length alerts)

let test_new_roa_is_info () =
  let alerts =
    observe (fun m ->
        ignore
          (Authority.issue_simple_roa m.Model.etb ~asid:65001
             ~prefix:(Rpki_ip.V4.p "63.170.128.0/20") ~now:2 ()))
  in
  Alcotest.(check bool) "info about new ROA" true (has_alert ~severity:Monitor.Info "new ROA" alerts);
  Alcotest.(check int) "no alarms" 0 (List.length (Monitor.alarms alerts))

let test_overt_revocation_is_warning () =
  let alerts =
    observe (fun m -> Authority.revoke_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2)
  in
  Alcotest.(check bool) "revoked via CRL" true
    (has_alert ~severity:Monitor.Warning "revoked via CRL" alerts);
  Alcotest.(check int) "not an alarm" 0 (List.length (Monitor.alarms alerts))

let test_stealth_delete_is_alarm () =
  let alerts =
    observe (fun m ->
        Authority.stealth_delete_roa m.Model.continental ~filename:m.Model.roa_cb_25 ~now:2)
  in
  Alcotest.(check bool) "stealth alarm" true
    (has_alert ~severity:Monitor.Alarm "deleted stealthily" alerts)

let test_stealth_cert_delete_is_alarm () =
  let alerts =
    observe (fun m -> Authority.stealth_delete_child_cert m.Model.sprint m.Model.etb ~now:2)
  in
  Alcotest.(check bool) "cert removal alarm" true
    (has_alert ~severity:Monitor.Alarm "removed stealthily" alerts)

let test_rc_shrink_is_alarm () =
  let alerts =
    observe (fun m ->
        let plan =
          Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
            ~target_filename:m.Model.roa_target20
        in
        ignore (Whack.execute ~manipulator:m.Model.sprint plan ~now:2))
  in
  Alcotest.(check bool) "shrink alarm" true (has_alert ~severity:Monitor.Alarm "shrunk" alerts);
  Alcotest.(check bool) "names the lost space" true (has_alert "63.174.24.0" alerts)

let test_mbb_duplicate_detected () =
  let alerts =
    observe (fun m ->
        let plan =
          Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental"
            ~target_filename:m.Model.roa_target22
        in
        ignore (Whack.execute ~manipulator:m.Model.sprint plan ~now:2))
  in
  Alcotest.(check bool) "duplicate-roa warning" true
    (has_alert "possible make-before-break" alerts);
  Alcotest.(check bool) "shrink alarm too" true (has_alert ~severity:Monitor.Alarm "shrunk" alerts)

let test_removed_and_reissued_is_alarm () =
  (* delete at Continental and reissue the same content at Sprint in the
     same window: the strongest make-before-break signature *)
  let alerts =
    observe (fun m ->
        Authority.stealth_delete_roa m.Model.continental ~filename:m.Model.roa_target20 ~now:2;
        ignore
          (Authority.issue_simple_roa m.Model.sprint ~asid:17054
             ~prefix:(Rpki_ip.V4.p "63.174.16.0/20") ~now:2 ()))
  in
  Alcotest.(check bool) "correlated alarm" true
    (has_alert ~severity:Monitor.Alarm "make-before-break signature" alerts)

let test_rc_grow_is_info () =
  let alerts =
    observe (fun m ->
        let bigger =
          Rpki_core.Resources.of_v4_strings [ "63.174.16.0/20"; "63.175.0.0/24" ]
        in
        ignore (Authority.shrink_child_cert m.Model.sprint m.Model.continental ~resources:bigger ~now:2))
  in
  Alcotest.(check bool) "grew info" true (has_alert ~severity:Monitor.Info "grew" alerts);
  Alcotest.(check int) "no alarm for growth" 0 (List.length (Monitor.alarms alerts))

let test_rewrite_roa_warning () =
  (* overwriting a ROA file with different content *)
  let alerts =
    observe (fun m ->
        let pp = (Authority.pub m.Model.continental) in
        let other =
          Rpki_core.Roa.issue ~ca_key:(Authority.key m.Model.continental).Rpki_crypto.Rsa.private_
            ~ca_subject:"Continental" ~serial:99 ~rng:(Rpki_util.Rng.create 5)
            ~ee_key:(Authority.ee_key m.Model.continental) ~asid:64999
            ~v4_entries:[ Rpki_core.Roa.entry (Rpki_ip.V4.p "63.174.30.0/24") ]
            ~not_before:0 ~not_after:100 ()
        in
        Pub_point.put pp ~filename:m.Model.roa_cb_28 (Rpki_core.Roa.encode other))
  in
  Alcotest.(check bool) "rewrite warning" true (has_alert ~severity:Monitor.Warning "rewritten" alerts)

let () =
  Alcotest.run "monitor"
    [ ( "benign",
        [ Alcotest.test_case "quiet baseline" `Quick test_quiet_when_nothing_happens;
          Alcotest.test_case "renewal" `Quick test_benign_renewal_quiet;
          Alcotest.test_case "refresh" `Quick test_refresh_quiet;
          Alcotest.test_case "new ROA" `Quick test_new_roa_is_info;
          Alcotest.test_case "RC growth" `Quick test_rc_grow_is_info ] );
      ( "overt",
        [ Alcotest.test_case "revocation via CRL" `Quick test_overt_revocation_is_warning ] );
      ( "manipulations",
        [ Alcotest.test_case "stealth ROA delete" `Quick test_stealth_delete_is_alarm;
          Alcotest.test_case "stealth cert delete" `Quick test_stealth_cert_delete_is_alarm;
          Alcotest.test_case "RC shrink" `Quick test_rc_shrink_is_alarm;
          Alcotest.test_case "make-before-break duplicate" `Quick test_mbb_duplicate_detected;
          Alcotest.test_case "remove + reissue correlation" `Quick test_removed_and_reissued_is_alarm;
          Alcotest.test_case "ROA rewrite" `Quick test_rewrite_roa_warning ] ) ]
