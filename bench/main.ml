(* Entry point: `dune exec bench/main.exe [-- EXPERIMENT...]`.

   With no arguments, every experiment runs (the tables/figures of the
   paper) followed by the Bechamel microbenchmark suite.  Individual
   experiments can be selected by id: fig2 fig3 tab4 fig5 tab6 se5 se6 se7
   campaign adoption depth sync-incremental stall transparency perf.
   `--quick` shrinks every experiment to a smoke pass; `--json` additionally
   writes BENCH_<name>.json for experiments that support it (stall,
   transparency, perf). *)

open Bechamel
open Toolkit
open Rpki_core
open Rpki_ip

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let drbg_rng seed = Rpki_crypto.Drbg.to_rng (Rpki_crypto.Drbg.create ~seed)

let bench_crypto () =
  let keypair = Rpki_crypto.Rsa.generate (drbg_rng "bench-keypair") in
  let msg_1k = String.make 1024 'x' in
  let msg_64k = String.make 65536 'x' in
  let signature = Rpki_crypto.Rsa.sign ~key:keypair.Rpki_crypto.Rsa.private_ msg_1k in
  Test.make_grouped ~name:"crypto"
    [ Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Rpki_crypto.Sha256.digest "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"));
      Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Rpki_crypto.Sha256.digest msg_1k));
      Test.make ~name:"sha256-64KiB" (Staged.stage (fun () -> Rpki_crypto.Sha256.digest msg_64k));
      Test.make ~name:"rsa-sign-512" (Staged.stage (fun () -> Rpki_crypto.Rsa.sign ~key:keypair.Rpki_crypto.Rsa.private_ msg_1k));
      Test.make ~name:"rsa-verify-512"
        (Staged.stage (fun () -> Rpki_crypto.Rsa.verify ~key:keypair.Rpki_crypto.Rsa.public ~signature msg_1k)) ]

let bench_objects () =
  let key = Rpki_crypto.Rsa.generate (drbg_rng "bench-objects") in
  let cert =
    Cert.self_signed ~key ~subject:"Bench" ~resources:(Resources.of_v4_strings [ "10.0.0.0/8" ])
      ~not_before:0 ~not_after:1000 ()
  in
  let encoded = Cert.encode cert in
  let roa =
    Roa.issue ~ca_key:key.Rpki_crypto.Rsa.private_ ~ca_subject:"Bench" ~serial:2
      ~rng:(drbg_rng "bench-roa") ~asid:65000
      ~v4_entries:[ Roa.entry ~max_len:24 (V4.p "10.1.0.0/20") ]
      ~not_before:0 ~not_after:1000 ()
  in
  Test.make_grouped ~name:"objects"
    [ Test.make ~name:"cert-encode" (Staged.stage (fun () -> Cert.encode cert));
      Test.make ~name:"cert-decode" (Staged.stage (fun () -> Cert.decode encoded));
      Test.make ~name:"cert-validate"
        (Staged.stage (fun () -> Validation.validate_cert ~now:10 ~parent:cert cert));
      Test.make ~name:"roa-validate"
        (Staged.stage (fun () -> Validation.validate_roa ~now:10 ~parent:cert roa)) ]

(* a VRP population of realistic size (the paper's projected deployment is
   tens of thousands of ROAs) *)
let synthetic_vrps n =
  let rng = Rpki_util.Rng.create 31 in
  List.init n (fun _ ->
      let addr = Rpki_util.Rng.bits rng 32 in
      let len = 12 + Rpki_util.Rng.int rng 13 in
      let prefix = V4.Prefix.make addr len in
      Vrp.make ~max_len:(min 32 (len + Rpki_util.Rng.int rng 4)) prefix (Rpki_util.Rng.int rng 65000))

let bench_origin_validation () =
  let vrps = synthetic_vrps 40_000 in
  let idx = Origin_validation.build vrps in
  let rng = Rpki_util.Rng.create 77 in
  let routes =
    Array.init 1024 (fun _ ->
        Route.make (V4.Prefix.make (Rpki_util.Rng.bits rng 32) (8 + Rpki_util.Rng.int rng 25))
          (Rpki_util.Rng.int rng 65000))
  in
  let i = ref 0 in
  let vrps_10k = synthetic_vrps 10_000 in
  Test.make_grouped ~name:"origin-validation"
    [ Test.make ~name:"build-index-10k" (Staged.stage (fun () -> Origin_validation.build vrps_10k));
      Test.make ~name:"classify-40k-index"
        (Staged.stage (fun () ->
             i := (!i + 1) land 1023;
             Origin_validation.classify idx routes.(!i))) ]

let bench_bgp () =
  let g = Rpki_bgp.Topo_gen.generate Rpki_bgp.Topo_gen.default_spec in
  let victim = List.hd g.Rpki_bgp.Topo_gen.stub_asns in
  let prefix = V4.p "63.174.16.0/20" in
  let idx = Origin_validation.build [ Vrp.make ~max_len:20 prefix victim ] in
  let anns = [ { Rpki_bgp.Propagation.prefix; origin = victim } ] in
  Test.make_grouped ~name:"bgp"
    [ Test.make ~name:"propagate-124-as"
        (Staged.stage (fun () ->
             Rpki_bgp.Propagation.compute ~topo:g.Rpki_bgp.Topo_gen.topo
               ~policy_of:(fun _ -> Rpki_bgp.Policy.Drop_invalid)
               ~validity_of:(Origin_validation.classify idx)
               anns)) ]

let bench_attack () =
  let m = Rpki_repo.Model.build () in
  Test.make_grouped ~name:"attack"
    [ Test.make ~name:"plan-grandchild-whack"
        (Staged.stage (fun () ->
             Rpki_attack.Whack.plan_targeted ~manipulator:m.Rpki_repo.Model.sprint
               ~target_issuer:"Continental" ~target_filename:m.Rpki_repo.Model.roa_target20)) ]

let bench_rp () =
  let m = Rpki_repo.Model.build () in
  let rp = Rpki_repo.Model.relying_party m in
  Test.make_grouped ~name:"relying-party"
    [ Test.make ~name:"full-sync-model"
        (Staged.stage (fun () ->
             Rpki_repo.Relying_party.sync rp ~now:1 ~universe:m.Rpki_repo.Model.universe ())) ]

let bench_rrdp () =
  let pp = Rpki_repo.Pub_point.create ~uri:"rsync://bench/repo" ~addr:0 ~host_asn:1 in
  for i = 0 to 199 do
    Rpki_repo.Pub_point.put pp ~filename:(Printf.sprintf "f%03d.roa" i) (String.make 256 (Char.chr (65 + (i mod 26))))
  done;
  let server = Rpki_repo.Rrdp.create pp in
  ignore (Rpki_repo.Rrdp.publish_now server);
  let i = ref 0 in
  Test.make_grouped ~name:"rrdp"
    [ Test.make ~name:"delta-cycle-200-files"
        (Staged.stage (fun () ->
             incr i;
             Rpki_repo.Pub_point.put pp ~filename:"f000.roa" (Printf.sprintf "v%d" !i);
             ignore (Rpki_repo.Rrdp.publish_now server);
             let client = Rpki_repo.Rrdp.create_client () in
             ignore (Rpki_repo.Rrdp.sync client server))) ]

let bench_rtr () =
  let cache = Rpki_rtr.Session.create_cache () in
  Rpki_rtr.Session.publish cache (synthetic_vrps 1000);
  Test.make_grouped ~name:"rtr"
    [ Test.make ~name:"full-dump-1k-vrps"
        (Staged.stage (fun () ->
             let router = Rpki_rtr.Session.create_router () in
             Rpki_rtr.Session.synchronize router cache)) ]

let run_perf () =
  Printf.printf "\n==== Microbenchmarks (Bechamel, monotonic clock) ====\n\n";
  let tests =
    Test.make_grouped ~name:"rpki-mra"
      [ bench_crypto (); bench_objects (); bench_origin_validation (); bench_bgp ();
        bench_attack (); bench_rp (); bench_rtr (); bench_rrdp () ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if !Experiments.quick then
      (* smoke mode: one short pass per benchmark, numbers are rough *)
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.01) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, estimate) :: acc)
      clock []
  in
  let t =
    Rpki_util.Table.create
      ~aligns:[ Rpki_util.Table.Left; Rpki_util.Table.Right ]
      [ "benchmark"; "time/run" ]
  in
  let humanize ns =
    if Float.is_nan ns then "n/a"
    else if ns < 1e3 then Printf.sprintf "%.1f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)
  in
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter (fun (name, est) -> Rpki_util.Table.add_row t [ name; humanize est ]) sorted;
  Rpki_util.Table.print t;
  Experiments.write_json ~name:"perf"
    (Printf.sprintf "{\"experiment\":\"perf\",\"quick\":%b,\"benchmarks\":[%s]}"
       !Experiments.quick
       (String.concat ","
          (List.map
             (fun (name, est) ->
               Printf.sprintf "{\"benchmark\":\"%s\",\"ns_per_run\":%s}" name
                 (if Float.is_nan est then "null" else Printf.sprintf "%.1f" est))
             sorted)))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let known = Experiments.all @ [ ("perf", run_perf) ] in
  let args = List.filter (fun a -> a <> Sys.argv.(0)) (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          Experiments.quick := true;
          false
        end
        else if a = "--json" then begin
          (* experiments that support it also write BENCH_<name>.json *)
          Experiments.json := true;
          false
        end
        else true)
      args
  in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) known
  | selected ->
    List.iter
      (fun name ->
        match List.assoc_opt name known with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst known));
          exit 1)
      selected
