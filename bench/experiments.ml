(* The experiment harness: regenerates every table and figure in the paper.

   Each function prints the same rows/series the paper reports (see
   EXPERIMENTS.md for the paper-vs-measured record).  Everything is
   deterministic; no state is shared between experiments. *)

open Rpki_core
open Rpki_repo
open Rpki_bgp
open Rpki_attack
open Rpki_ip
module Table = Rpki_util.Table

let header title =
  Printf.printf "\n==== %s ====\n\n" title

let quick = ref false
(* set by the driver's --quick flag: shrink problem sizes so the whole
   suite can run as a smoke test under `dune runtest` *)

let json = ref false
(* set by the driver's --json flag: experiments that support it also write
   their rows to BENCH_<name>.json in the working directory *)

let write_json ~name body =
  if !json then begin
    let file = Printf.sprintf "BENCH_%s.json" name in
    let oc = open_out file in
    output_string oc body;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote %s)\n" file
  end

(* ------------------------------------------------------------------ *)
(* Figure 2: the model RPKI                                            *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "Figure 2: model RPKI (reconstructed from the paper's text)";
  let m = Model.build () in
  print_string (Model.render m);
  let rp = Model.relying_party m in
  let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe () in
  Printf.printf "\nrelying party sync: %d valid ROAs (VRPs), %d issues, CAs: %s\n"
    (List.length r.Relying_party.vrps)
    (List.length r.Relying_party.issues)
    (String.concat ", " r.Relying_party.cas_validated);
  List.iter (fun v -> Printf.printf "  %s\n" (Vrp.to_string v)) r.Relying_party.vrps

(* ------------------------------------------------------------------ *)
(* Figure 3: targeted whacking                                         *)
(* ------------------------------------------------------------------ *)

let run_whack ~label ~target_filename ~target_vrps =
  Printf.printf "--- %s ---\n" label;
  let m = Model.build () in
  let rp = Model.relying_party m in
  let plan =
    Whack.plan_targeted ~manipulator:m.Model.sprint ~target_issuer:"Continental" ~target_filename
  in
  print_string (Whack.describe plan);
  let d, collateral =
    Assess.measure ~rp ~universe:m.Model.universe ~now:1 ~target:target_vrps (fun () ->
        ignore (Whack.execute ~manipulator:m.Model.sprint plan ~now:1))
  in
  Printf.printf "  VRPs whacked : %s\n"
    (String.concat ", " (List.map Vrp.to_string d.Assess.net_lost));
  Printf.printf "  collateral   : %d%s\n\n" (List.length collateral)
    (if collateral = [] then " (zero, as the paper claims)" else "")

let fig3 () =
  header "Figure 3 / Section 3.1: ROAs whacked by their grandparent (Sprint)";
  run_whack ~label:"clean whack of (63.174.16.0/20, AS 17054)"
    ~target_filename:(Model.build ()).Model.roa_target20
    ~target_vrps:[ Vrp.make ~max_len:20 (V4.p "63.174.16.0/20") 17054 ];
  run_whack ~label:"make-before-break whack of (63.174.16.0/22, AS 7341)"
    ~target_filename:(Model.build ()).Model.roa_target22
    ~target_vrps:[ Vrp.make ~max_len:22 (V4.p "63.174.16.0/22") 7341 ];
  (* the blunt alternative the paper contrasts with *)
  Printf.printf "--- blunt alternative: revoke Continental's RC outright ---\n";
  let m = Model.build () in
  let rp = Model.relying_party m in
  let d, collateral =
    Assess.measure ~rp ~universe:m.Model.universe ~now:1
      ~target:[ Vrp.make ~max_len:20 (V4.p "63.174.16.0/20") 17054 ]
      (fun () -> Authority.revoke_child m.Model.sprint m.Model.continental ~now:1)
  in
  Printf.printf "  VRPs whacked : %d (target + %d collateral)\n"
    (List.length d.Assess.net_lost) (List.length collateral);
  List.iter (fun v -> Printf.printf "    %s\n" (Vrp.to_string v)) d.Assess.net_lost

(* ------------------------------------------------------------------ *)
(* Table 4: cross-jurisdiction certification                           *)
(* ------------------------------------------------------------------ *)

let tab4 () =
  header "Table 4: RCs covering countries outside their parent RIR's jurisdiction";
  let records = Rpki_juris.Dataset.paper_fixture () in
  let t = Table.create [ "Holder"; "RC"; "RIR"; "Countries (out of jurisdiction)" ] in
  List.iter
    (fun (e : Rpki_juris.Analysis.rc_exposure) ->
      Table.add_row t
        [ e.Rpki_juris.Analysis.record.Rpki_juris.Dataset.holder;
          V4.Prefix.to_string e.Rpki_juris.Analysis.record.Rpki_juris.Dataset.rc_prefix;
          Rpki_juris.Country.rir_to_string
            e.Rpki_juris.Analysis.record.Rpki_juris.Dataset.parent_rir;
          String.concat "," e.Rpki_juris.Analysis.foreign_countries ])
    (Rpki_juris.Analysis.cross_jurisdiction_rcs records);
  Table.print t;
  Printf.printf "\nRIR reach beyond its own jurisdiction:\n";
  List.iter
    (fun (rir, reach) ->
      if reach <> [] then
        Printf.printf "  %-8s can whack ROAs in: %s\n"
          (Rpki_juris.Country.rir_to_string rir)
          (String.concat "," reach))
    (Rpki_juris.Analysis.rir_reach records);
  Printf.printf "\nSynthetic deployment sweep (cross-border certification frequency):\n";
  let t2 =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "cross-border customer frac"; "RCs"; "crossing"; "mean foreign countries" ]
  in
  List.iter
    (fun f ->
      let s =
        Rpki_juris.Analysis.stats
          (Rpki_juris.Dataset.synthetic
             { Rpki_juris.Dataset.default_synthetic with Rpki_juris.Dataset.cross_border_fraction = f })
      in
      Table.add_row t2
        [ Printf.sprintf "%.2f" f; string_of_int s.Rpki_juris.Analysis.total_rcs;
          string_of_int s.Rpki_juris.Analysis.cross_border_rcs;
          Printf.sprintf "%.2f" s.Rpki_juris.Analysis.mean_foreign_countries ])
    [ 0.0; 0.05; 0.15; 0.3; 0.5 ];
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Figure 5: route validity for 63.160.0.0/12 and its subprefixes      *)
(* ------------------------------------------------------------------ *)

let fig5_samples idx label =
  Printf.printf "%s\n" label;
  let routes =
    [ Route.make (V4.p "63.160.0.0/12") 1239;
      Route.make (V4.p "63.160.0.0/13") 1239;
      Route.make (V4.p "63.161.0.0/16") 1239;
      Route.make (V4.p "63.161.5.0/24") 1239;
      Route.make (V4.p "63.168.0.0/16") 1239;
      Route.make (V4.p "63.170.0.0/16") 19429;
      Route.make (V4.p "63.174.16.0/20") 17054;
      Route.make (V4.p "63.174.16.0/22") 7341;
      Route.make (V4.p "63.174.17.0/24") 17054;
      Route.make (V4.p "63.174.25.0/24") 17054;
      Route.make (V4.p "63.172.0.0/16") 7018 ]
  in
  let t = Table.create [ "route"; "state"; "why" ] in
  List.iter
    (fun (route, state, why) ->
      Table.add_row t [ Route.to_string route; Origin_validation.state_to_string state; why ])
    (Validity_grid.sample_rows idx routes);
  Table.print t

(* The figure itself: the subtree of 63.160.0.0/12 down to /18, one row per
   length, one character per subprefix (V valid, i invalid, . unknown) for
   the given origin. *)
let fig5_tree idx ~origin label =
  Printf.printf "\n%s — validity tree for origin AS%d (V=valid, i=invalid, .=unknown):\n" label origin;
  let root = V4.p "63.160.0.0/12" in
  for len = 12 to 18 do
    let n = 1 lsl (len - 12) in
    let row =
      String.init n (fun i ->
          let prefix = V4.Prefix.make (V4.Prefix.addr root + (i lsl (32 - len))) len in
          match Origin_validation.classify idx (Route.make prefix origin) with
          | Origin_validation.Valid -> 'V'
          | Origin_validation.Invalid -> 'i'
          | Origin_validation.Unknown -> '.')
    in
    Printf.printf "  /%d %s%s\n" len (String.make (64 - n) ' ') row
  done

let fig5_grid idx ~origin label =
  Printf.printf "\n%s (origin AS%d): subprefix counts by length\n" label origin;
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "len"; "valid"; "invalid"; "unknown" ]
  in
  List.iter
    (fun (s : Validity_grid.length_summary) ->
      Table.add_row t
        [ Printf.sprintf "/%d" s.Validity_grid.len; string_of_int s.Validity_grid.valid;
          string_of_int s.Validity_grid.invalid; string_of_int s.Validity_grid.unknown ])
    (Validity_grid.grid idx ~root:(V4.p "63.160.0.0/12") ~min_len:12 ~max_len:24 ~origin);
  Table.print t

let fig5 () =
  header "Figure 5: route validity for 63.160.0.0/12 and its subprefixes";
  let m = Model.build () in
  let rp = Model.relying_party m in
  let left = (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ()).Relying_party.index in
  fig5_samples left "LEFT: the RPKI of Figure 2";
  fig5_tree left ~origin:17054 "LEFT";
  fig5_grid left ~origin:1239 "LEFT";
  (* add the covering ROA and recompute *)
  let _ = Model.add_fig5_right_roa m ~now:1 in
  let right = (Relying_party.sync rp ~now:1 ~universe:m.Model.universe ()).Relying_party.index in
  Printf.printf "\n";
  fig5_samples right "RIGHT: after Sprint issues (63.160.0.0/12-13, AS 1239)";
  fig5_tree right ~origin:17054 "RIGHT";
  fig5_grid right ~origin:1239 "RIGHT";
  (* Side Effect 5 on the figure itself: how many /16..24 routes flipped *)
  let flips origin =
    let rec count len acc =
      if len > 24 then acc
      else begin
        let l =
          Validity_grid.summarize_length left ~root:(V4.p "63.160.0.0/12") ~len ~origin
        in
        let r =
          Validity_grid.summarize_length right ~root:(V4.p "63.160.0.0/12") ~len ~origin
        in
        count (len + 1) (acc + (r.Validity_grid.invalid - l.Validity_grid.invalid))
      end
    in
    count 13 0
  in
  Printf.printf
    "\nSide Effect 5 on this figure: %d subprefix routes (len 13..24, foreign origin)\n\
     flipped unknown->invalid when the /12 ROA appeared.\n"
    (flips 64999)

(* ------------------------------------------------------------------ *)
(* Table 6: local policies vs the two attack classes                   *)
(* ------------------------------------------------------------------ *)

let tab6 () =
  header "Table 6: impact of relying-party local policies";
  let s = Topo_gen.small_scenario () in
  let victim_prefix = V4.p "63.174.16.0/20" in
  let dst = V4.addr_of_string_exn "63.174.23.7" in
  let healthy_idx =
    Origin_validation.build [ Vrp.make ~max_len:20 victim_prefix s.Topo_gen.victim ]
  in
  (* ROA whacked while Sprint's covering ROA exists: route invalid *)
  let whacked_idx = Origin_validation.build [ Vrp.make ~max_len:13 (V4.p "63.160.0.0/12") 1239 ] in
  let legit = [ { Propagation.prefix = victim_prefix; origin = s.Topo_gen.victim } ] in
  let hijack =
    Hijack.announcements ~victim_prefix ~victim_as:s.Topo_gen.victim
      ~attacker_as:s.Topo_gen.attacker
      (Hijack.Subprefix_hijack (Hijack.subprefix_containing ~victim_prefix ~addr:dst ~len:24))
  in
  let cell policy idx anns ~attack =
    let net =
      Data_plane.build ~topo:s.Topo_gen.small_topo ~policy_of:(fun _ -> policy)
        ~validity_of:(Origin_validation.classify idx) anns
    in
    let ok = Data_plane.reaches net ~src:s.Topo_gen.source ~addr:dst ~expected:s.Topo_gen.victim in
    match (ok, attack) with
    | true, _ -> "YES"
    | false, `Hijack -> "NO (subprefix hijack succeeds)"
    | false, `Manipulation -> "NO (prefix offline)"
  in
  let t =
    Table.create
      [ "relying-party policy"; "prefix reachable: routing attack"; "RPKI manipulation" ]
  in
  List.iter
    (fun policy ->
      Table.add_row t
        [ Policy.to_string policy;
          cell policy healthy_idx hijack ~attack:`Hijack;
          cell policy whacked_idx legit ~attack:`Manipulation ])
    [ Policy.Drop_invalid; Policy.Depref_invalid; Policy.Ignore_rpki ];
  Table.print t;
  (* the same table measured as reachability fractions on a 124-AS topology *)
  Printf.printf "\nFractions of ASes still reaching the victim (124-AS synthetic topology):\n";
  let g = Topo_gen.generate Topo_gen.default_spec in
  let victim = List.hd g.Topo_gen.stub_asns and attacker = List.nth g.Topo_gen.stub_asns 7 in
  let healthy_idx = Origin_validation.build [ Vrp.make ~max_len:20 victim_prefix victim ] in
  let hijack =
    Hijack.announcements ~victim_prefix ~victim_as:victim ~attacker_as:attacker
      (Hijack.Subprefix_hijack (Hijack.subprefix_containing ~victim_prefix ~addr:dst ~len:24))
  in
  let legit = [ { Propagation.prefix = victim_prefix; origin = victim } ] in
  let frac policy idx anns =
    let net =
      Data_plane.build ~topo:g.Topo_gen.topo ~policy_of:(fun _ -> policy)
        ~validity_of:(Origin_validation.classify idx) anns
    in
    Data_plane.reachability_fraction net ~addr:dst ~expected:victim
  in
  let t2 =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "policy"; "subprefix hijack"; "RPKI manipulation" ]
  in
  List.iter
    (fun policy ->
      Table.add_row t2
        [ Policy.to_string policy;
          Printf.sprintf "%.2f" (frac policy healthy_idx hijack);
          Printf.sprintf "%.2f" (frac policy whacked_idx legit) ])
    [ Policy.Drop_invalid; Policy.Depref_invalid; Policy.Ignore_rpki ];
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Side Effect 5: partial deployment sweep                             *)
(* ------------------------------------------------------------------ *)

let se5 () =
  header "Side Effect 5: a new covering ROA invalidates unprotected subprefix routes";
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "customer ROA adoption"; "routes"; "invalid before"; "invalid after"; "unknown->invalid flips" ]
  in
  List.iter
    (fun (r : Rpki_sim.Deployment.row) ->
      Table.add_row t
        [ Printf.sprintf "%.2f" r.Rpki_sim.Deployment.adoption;
          string_of_int r.Rpki_sim.Deployment.total_routes;
          string_of_int r.Rpki_sim.Deployment.before.Rpki_sim.Deployment.invalid;
          string_of_int r.Rpki_sim.Deployment.after.Rpki_sim.Deployment.invalid;
          string_of_int r.Rpki_sim.Deployment.flips ])
    (Rpki_sim.Deployment.sweep ());
  Table.print t;
  let cover =
    Rpki_sim.Deployment.invalid_window ~spec:Rpki_sim.Deployment.default_spec
      Rpki_sim.Deployment.Cover_first
  in
  let sub =
    Rpki_sim.Deployment.invalid_window ~spec:Rpki_sim.Deployment.default_spec
      Rpki_sim.Deployment.Subprefixes_first
  in
  Printf.printf
    "\nOrdering ablation (the paper's deployment rule): issuing the covering ROA first\n\
     leaves %d routes invalid mid-deployment; issuing subprefix ROAs first leaves %d.\n"
    cover sub

(* ------------------------------------------------------------------ *)
(* Side Effect 6: missing information                                  *)
(* ------------------------------------------------------------------ *)

let se6 () =
  header "Side Effect 6: a missing ROA makes a route invalid, not unknown";
  let t = Table.create [ "scenario"; "route"; "state"; "validation issues" ] in
  let classify (m : Model.t) rp route =
    let r = Relying_party.sync rp ~now:1 ~universe:m.Model.universe () in
    let idx = r.Relying_party.index in
    ( Origin_validation.state_to_string (Origin_validation.classify idx route),
      string_of_int (List.length r.Relying_party.issues) )
  in
  let route22 = Route.make (V4.p "63.174.16.0/22") 7341 in
  let route20 = Route.make (V4.p "63.174.16.0/20") 17054 in
  let m = Model.build () in
  let rp = Model.relying_party m in
  let st, issues = classify m rp route22 in
  Table.add_row t [ "healthy RPKI"; Route.to_string route22; st; issues ];
  let _ = Fault.delete_object (Authority.pub m.Model.continental) ~filename:m.Model.roa_target22 in
  let st, issues = classify m rp route22 in
  Table.add_row t
    [ "ROA (63.174.16.0/22, AS7341) missing"; Route.to_string route22; st; issues ];
  let m2 = Model.build () in
  let rp2 = Model.relying_party m2 in
  let _ = Fault.corrupt_object (Authority.pub m2.Model.continental) ~filename:m2.Model.roa_target22 () in
  let st, issues = classify m2 rp2 route22 in
  Table.add_row t [ "same ROA corrupted on disk"; Route.to_string route22; st; issues ];
  let m3 = Model.build () in
  let rp3 = Model.relying_party m3 in
  let _ = Fault.delete_object (Authority.pub m3.Model.continental) ~filename:m3.Model.roa_target20 in
  let st, issues = classify m3 rp3 route20 in
  Table.add_row t
    [ "ROA (63.174.16.0/20, AS17054) missing (no covering ROA)"; Route.to_string route20; st;
      issues ];
  Table.print t;
  Printf.printf
    "\nThe /22 goes INVALID when its ROA is missing (the /20 ROA covers it), while the /20\n\
     merely goes UNKNOWN — the asymmetry the paper calls 'easily misunderstood'.\n"

(* ------------------------------------------------------------------ *)
(* Side Effect 7 / Section 6: the circular dependency                  *)
(* ------------------------------------------------------------------ *)

let se7 () =
  header "Side Effect 7 / Section 6: transient fault -> persistent failure";
  let timeline policy label =
    let _, hist = Rpki_sim.Loop.run_section6 ~policy () in
    Printf.printf "\npolicy: %s\n" label;
    let t =
      Table.create
        [ "tick"; "event"; "VRPs"; "issues"; "continental repo"; "sprint repo" ]
    in
    let event = function
      | 3 -> "RP fetches CORRUPTED copy of the /20 ROA"
      | 4 -> "repository repaired"
      | _ -> ""
    in
    List.iter
      (fun (r : Rpki_sim.Loop.tick_record) ->
        let probe label = if List.assoc label r.Rpki_sim.Loop.probe_results then "up" else "DOWN" in
        Table.add_row t
          [ Rtime.to_string r.Rpki_sim.Loop.time; event r.Rpki_sim.Loop.time;
            string_of_int r.Rpki_sim.Loop.vrp_count;
            string_of_int r.Rpki_sim.Loop.issue_count; probe "continental-repo";
            probe "sprint-repo" ])
      hist;
    Table.print t
  in
  timeline Policy.Drop_invalid "drop invalid (the failure persists after repair)";
  timeline Policy.Depref_invalid "depref invalid (recovers at the next sync)";
  timeline Policy.Ignore_rpki "ignore RPKI (control: never affected)";
  (* ablation: the two mitigations from the paper's open problems / the
     concurrent IETF work it cites *)
  Printf.printf "\nMitigation ablation (drop-invalid relying party):\n";
  let summarize label hist =
    let probe t =
      List.assoc "continental-repo" (List.nth hist (t - 1)).Rpki_sim.Loop.probe_results
    in
    Printf.printf "  %-42s t3 %-4s t4 %-4s t7 %s\n" label
      (if probe 3 then "up" else "DOWN")
      (if probe 4 then "up" else "DOWN")
      (if probe 7 then "up" else "DOWN")
  in
  let _, plain = Rpki_sim.Loop.run_section6 ~policy:Policy.Drop_invalid () in
  let _, mirrored = Rpki_sim.Loop.run_section6 ~policy:Policy.Drop_invalid ~mirrored:true () in
  let _, graced = Rpki_sim.Loop.run_section6 ~policy:Policy.Drop_invalid ~grace:10 () in
  summarize "no mitigation" plain;
  summarize "mirrored publication point (ref [16])" mirrored;
  summarize "Suspenders-style 10-tick grace (ref [25])" graced;
  Printf.printf
    "  (mirroring confines the outage to the fault window; the grace hold\n\
    \   prevents it entirely but delays legitimate revocations by the window)\n"

(* ------------------------------------------------------------------ *)
(* Extension: censorship campaigns on the Table 4 hierarchy            *)
(* ------------------------------------------------------------------ *)

let campaign () =
  header "Extension: a coerced RIR silences a country (Section 3.2, executed)";
  let records = Rpki_juris.Dataset.paper_fixture () in
  let universe, rir_tas, _ = Campaign.hierarchy_of_dataset records in
  let arin = List.assoc Rpki_juris.Country.ARIN rir_tas in
  let rp =
    Relying_party.create ~name:"rp" ~asn:1
      ~tals:(List.map (fun (_, ta) -> Relying_party.tal_of_authority ta) rir_tas)
      ()
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "country (via coerced ARIN)"; "target ROAs"; "reissues needed"; "silenced";
        "collateral" ]
  in
  List.iter
    (fun country ->
      let universe, rir_tas, _ = Campaign.hierarchy_of_dataset records in
      let arin = List.assoc Rpki_juris.Country.ARIN rir_tas in
      let rp =
        Relying_party.create ~name:"rp" ~asn:1
          ~tals:(List.map (fun (_, ta) -> Relying_party.tal_of_authority ta) rir_tas)
          ()
      in
      let asns = Campaign.asns_of_country records country in
      let c = Campaign.plan ~manipulator:arin ~objective:(Campaign.Target_asns asns) in
      let before = (Relying_party.sync rp ~now:1 ~universe ()).Relying_party.vrps in
      let executed, _ = Campaign.execute ~manipulator:arin c ~now:1 in
      let after = (Relying_party.sync rp ~now:1 ~universe ()).Relying_party.vrps in
      let d = Assess.diff ~before ~after in
      let collateral =
        List.filter (fun (v : Vrp.t) -> not (List.mem v.Vrp.asn asns)) d.Assess.net_lost
      in
      Table.add_row t
        [ country; string_of_int (List.length c.Campaign.steps);
          string_of_int (Campaign.reissue_count c); string_of_int executed;
          string_of_int (List.length collateral) ])
    [ "CO"; "FR"; "GB"; "MX" ];
  Table.print t;
  ignore (universe, arin, rp);
  Printf.printf
    "\nEach row is out-of-jurisdiction coercion: none of these countries is in ARIN's\n\
     service region, yet every one of their ROAs is whackable with zero collateral.\n"

(* ------------------------------------------------------------------ *)
(* Extension: partial adoption of drop-invalid (cf. the paper's [29])  *)
(* ------------------------------------------------------------------ *)

let adoption () =
  header "Extension: security benefit of partially deployed drop-invalid";
  let g = Topo_gen.generate Topo_gen.default_spec in
  let victim = List.hd g.Topo_gen.stub_asns in
  let attacker = List.nth g.Topo_gen.stub_asns 42 in
  let victim_prefix = V4.p "203.0.112.0/20" in
  let dst = V4.addr_of_string_exn "203.0.119.80" in
  let idx = Origin_validation.build [ Vrp.make ~max_len:20 victim_prefix victim ] in
  let anns =
    Hijack.announcements ~victim_prefix ~victim_as:victim ~attacker_as:attacker
      (Hijack.Subprefix_hijack (Hijack.subprefix_containing ~victim_prefix ~addr:dst ~len:24))
  in
  let all_asns = Topology.asns g.Topo_gen.topo in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "fraction dropping invalid"; "everyone else ignores"; "tier-1+tier-2 adopt first" ]
  in
  let frac_with policy_of =
    let net = Data_plane.build ~topo:g.Topo_gen.topo ~policy_of ~validity_of:(Origin_validation.classify idx) anns in
    Data_plane.reachability_fraction net ~addr:dst ~expected:victim
  in
  List.iter
    (fun f ->
      (* random adoption at fraction f *)
      let rng = Rpki_util.Rng.create 23 in
      let adopters =
        List.filter (fun _ -> Rpki_util.Rng.float rng < f) all_asns
      in
      let random_frac =
        frac_with (fun asn ->
            if List.mem asn adopters then Policy.Drop_invalid else Policy.Ignore_rpki)
      in
      (* core-first adoption: tier-1 and tier-2 adopt before stubs *)
      let core = g.Topo_gen.tier1_asns @ g.Topo_gen.tier2_asns in
      let n_core = List.length core and n_all = List.length all_asns in
      let want = int_of_float (f *. float_of_int n_all) in
      let core_adopters =
        if want <= n_core then List.filteri (fun i _ -> i < want) core
        else core @ List.filteri (fun i _ -> i < want - n_core) g.Topo_gen.stub_asns
      in
      let core_frac =
        frac_with (fun asn ->
            if List.mem asn core_adopters then Policy.Drop_invalid else Policy.Ignore_rpki)
      in
      Table.add_row t
        [ Printf.sprintf "%.2f" f; Printf.sprintf "%.2f" random_frac;
          Printf.sprintf "%.2f" core_frac ])
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ];
  Table.print t;
  Printf.printf
    "\nValues are the fraction of ASes still reaching the victim during a subprefix\n\
     hijack.  Placement matters more than volume — the 'is the juice worth the\n\
     squeeze' observation of the paper's ref [29].\n"

(* ------------------------------------------------------------------ *)
(* Extension: Side Effect 4 quantified — reissue cost vs target depth  *)
(* ------------------------------------------------------------------ *)

(* A straight chain TA -> A1 -> ... -> A[depth], every level holding one
   bystander ROA, the target ROA at the bottom. *)
let build_chain depth =
  let universe = Universe.create () in
  let ta =
    Authority.create_trust_anchor ~name:(Printf.sprintf "CTA%d" depth)
      ~resources:(Resources.of_v4_strings [ "40.0.0.0/8" ])
      ~uri:(Printf.sprintf "rsync://cta%d/repo" depth)
      ~addr:(V4.addr_of_string_exn "198.51.100.40") ~host_asn:1 ~now:0 ~universe ()
  in
  let rec extend parent level =
    (* each level keeps half of its parent's space and a bystander ROA *)
    let len = 8 + (2 * level) in
    let prefix = V4.Prefix.make (40 lsl 24) len in
    let a =
      Authority.create_child parent
        ~name:(Printf.sprintf "chain%d-%d" depth level)
        ~resources:(Resources.make ~v4:(V4.Set.of_prefix prefix) ())
        ~uri:(Printf.sprintf "rsync://chain%d-%d/repo" depth level)
        ~addr:((40 lsl 24) + level) ~host_asn:(100 + level) ~now:0 ~universe ()
    in
    let bystander = V4.Prefix.make ((40 lsl 24) lor (1 lsl (31 - len))) (len + 2) in
    ignore (Authority.issue_simple_roa a ~asid:(500 + level) ~prefix:bystander ~now:0 ());
    if level = depth then begin
      let target, _ =
        Authority.issue_simple_roa a ~asid:999 ~prefix:(V4.Prefix.make (40 lsl 24) (len + 2))
          ~now:0 ()
      in
      (universe, ta, (Authority.name a), target)
    end
    else extend a (level + 1)
  in
  extend ta 1

let depth () =
  header "Extension: Side Effect 4 quantified — reissued objects vs target depth";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "target is the manipulator's..."; "depth"; "reissued RCs"; "reissued ROAs";
        "net collateral" ]
  in
  List.iter
    (fun d ->
      let universe, ta, issuer, target = build_chain d in
      let plan = Whack.plan_targeted ~manipulator:ta ~target_issuer:issuer ~target_filename:target in
      let rcs =
        List.length
          (List.filter (function Whack.Reissue_rc _ -> true | _ -> false) plan.Whack.reissues)
      in
      let roas =
        List.length
          (List.filter (function Whack.Reissue_roa _ -> true | _ -> false) plan.Whack.reissues)
      in
      let rp =
        Relying_party.create ~name:"rp" ~asn:1 ~tals:[ Relying_party.tal_of_authority ta ] ()
      in
      let before = (Relying_party.sync rp ~now:1 ~universe ()).Relying_party.vrps in
      ignore (Whack.execute ~manipulator:ta plan ~now:1);
      let after = (Relying_party.sync rp ~now:1 ~universe ()).Relying_party.vrps in
      let d' = Assess.diff ~before ~after in
      let collateral =
        List.filter (fun (v : Vrp.t) -> v.Vrp.asn <> 999) d'.Assess.net_lost
      in
      (* the ROA is one generation below its issuer: issuer depth d means
         the ROA is the manipulator's (d+1)-generation descendant *)
      let name =
        match d + 1 with
        | 2 -> "grandchild ROA (Side Effect 3)"
        | 3 -> "great-grandchild ROA (Side Effect 4)"
        | n -> Printf.sprintf "%d generations down" n
      in
      Table.add_row t
        [ name; string_of_int (d + 1); string_of_int rcs; string_of_int roas;
          string_of_int (List.length collateral) ])
    [ 1; 2; 3; 4 ];
  Table.print t;
  Printf.printf
    "\nEach extra level of depth costs one more suspiciously-reissued RC — the paper's\n\
     Side Effect 4: deeper whacking stays feasible but gets easier to detect.\n"

(* ------------------------------------------------------------------ *)
(* Incremental sync: cold full validation vs. warm delta tick          *)
(* ------------------------------------------------------------------ *)

(* A flat deployment: [n_points] sibling CAs under one TA, the target VRP
   count spread over multi-entry ROAs so RSA key generation stays cheap.
   Each child holds a /15 slice of 30.0.0.0/8. *)
let build_flat_universe ~n_points ~n_vrps =
  let universe = Universe.create () in
  let ta =
    Authority.create_trust_anchor ~name:"TA"
      ~resources:(Resources.of_v4_strings [ "30.0.0.0/8" ])
      ~uri:"rsync://ta/repo" ~addr:1 ~host_asn:1 ~now:0 ~universe ()
  in
  let per_point = (n_vrps + n_points - 1) / n_points in
  let children =
    Array.init n_points (fun c ->
        let base = (30 lsl 24) lor (c lsl 17) in
        let child =
          Authority.create_child ta
            ~name:(Printf.sprintf "C%03d" c)
            ~resources:(Resources.make ~v4:(V4.Set.of_prefix (V4.Prefix.make base 15)) ())
            ~uri:(Printf.sprintf "rsync://c%03d/repo" c)
            ~addr:(base + 1) ~host_asn:(100 + c) ~now:0 ~universe ()
        in
        let entries =
          List.init per_point (fun i ->
              Roa.entry
                ~max_len:(24 + (i / 512))
                (V4.Prefix.make (base lor ((i mod 512) lsl 8)) 24))
        in
        ignore (Authority.issue_roa child ~asid:(1000 + c) ~v4_entries:entries ~now:0 ());
        child)
  in
  (universe, ta, children)

let time_ms f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.)

let sync_incremental () =
  header "Incremental sync: cold full validation vs. warm tick (1 point touched)";
  let sizes = if !quick then [ (16, 2_000) ] else [ (100, 10_000); (100, 40_000) ] in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "VRPs"; "points"; "cold (ms)"; "warm (ms)"; "warm/cold"; "reused/revalidated" ]
  in
  List.iter
    (fun (n_points, n_vrps) ->
      let universe, ta, children = build_flat_universe ~n_points ~n_vrps in
      let rp =
        Relying_party.create ~name:"bench-rp" ~asn:1
          ~tals:[ Relying_party.tal_of_authority ta ] ()
      in
      let cold_r, cold_ms = time_ms (fun () -> Relying_party.sync rp ~now:1 ~universe ()) in
      (* the warm tick: one publication point refreshes its CRL + manifest *)
      Authority.refresh children.(0) ~now:2;
      let warm_r, warm_ms = time_ms (fun () -> Relying_party.sync rp ~now:2 ~universe ()) in
      assert (List.length warm_r.Relying_party.vrps = List.length cold_r.Relying_party.vrps);
      Table.add_row t
        [ string_of_int (List.length cold_r.Relying_party.vrps);
          string_of_int (n_points + 1);
          Printf.sprintf "%.1f" cold_ms;
          Printf.sprintf "%.1f" warm_ms;
          Printf.sprintf "%.3f" (warm_ms /. cold_ms);
          Printf.sprintf "%d/%d" warm_r.Relying_party.points_reused
            warm_r.Relying_party.points_revalidated ])
    sizes;
  Table.print t;
  Printf.printf
    "\nA warm tick re-validates only the touched point; everything else is\n\
     replayed from the per-point memo and the index is patched by the diff.\n"

(* ------------------------------------------------------------------ *)
(* Stalloris: stall intensity x fetch policy                           *)
(* ------------------------------------------------------------------ *)

(* The transport-level downgrade: a Stalloris-style adversary throttles the
   victim's publication point while every authority performs perfect upkeep
   (short validity windows, re-signed every tick).  A relying party that
   cannot complete fetches serves ever-staler cache until the cached
   objects' validity windows lapse; under drop-invalid the victim's route
   then flips valid -> invalid (Sprint's covering /12-13 ROA stays fresh —
   it lives at an unstalled point fetched earlier in the walk).  The fetch
   policy decides the blast radius: [naive] burns its whole budget on the
   stalled point (starving innocent points behind it in the walk), while
   bounded retries plus mirror/RRDP fallback confine the damage to nothing
   but slightly higher fetch latency. *)
let stall () =
  header "Stalloris: stall intensity x fetch policy (drop-invalid, perfect upkeep)";
  let ticks = if !quick then 9 else 14 in
  let validity = if !quick then 5 else 8 in
  let refresh_interval = 3 in
  let attack_at = 3 in
  let intensities = if !quick then [ 0; 256 ] else [ 0; 4; 32; 256 ] in
  let policies =
    [ ("naive", Relying_party.naive_policy);
      ("default", Relying_party.default_policy);
      ("resilient", Relying_party.resilient_policy) ]
  in
  let victim_route = Route.make (V4.p "63.174.16.0/20") Model.as_continental in
  let run_cell ~policy ~intensity =
    let sc =
      Rpki_sim.Loop.section6_scenario ~mirrored:true ~rrdp:true ~validity ~refresh_interval ()
    in
    let sim = sc.Rpki_sim.Loop.sim in
    Rpki_sim.Loop.set_fetch_policy sim policy;
    let plan =
      if intensity = 0 then None
      else Some (Stall.plan_against ~victim:sc.Rpki_sim.Loop.model.Model.continental ~intensity)
    in
    let continental_uri = Pub_point.uri sc.Rpki_sim.Loop.continental_repo in
    List.init ticks (fun i ->
        let now = i + 1 in
        if now = attack_at then
          Option.iter (fun p -> Stall.apply p (Rpki_sim.Loop.transport sim)) plan;
        Authority.maintain sc.Rpki_sim.Loop.model.Model.arin ~now;
        let r = Rpki_sim.Loop.step sim ~now in
        let result = Option.get (Relying_party.last_result sim.Rpki_sim.Loop.rp) in
        let state = Origin_validation.classify result.Relying_party.index victim_route in
        let channel =
          match
            List.find_opt
              (fun (tr : Relying_party.transfer) -> tr.Relying_party.t_uri = continental_uri)
              result.Relying_party.transfers
          with
          | Some tr -> tr.Relying_party.t_channel
          | None -> "-"
        in
        (now, state, channel, r))
  in
  let short_channel c =
    match String.index_opt c ':' with Some i -> String.sub c 0 i | None -> c
  in
  let cell_summary timeline =
    let _, final_state, final_channel, _ = List.nth timeline (ticks - 1) in
    let first_bad =
      List.find_map
        (fun (now, st, _, _) -> if st <> Origin_validation.Valid then Some now else None)
        timeline
    in
    let worst_age =
      List.fold_left (fun acc (_, _, _, r) -> max acc r.Rpki_sim.Loop.max_data_age) 0 timeline
    in
    match first_bad with
    | None ->
      Printf.sprintf "valid (%s%s)" (short_channel final_channel)
        (if worst_age > 0 then Printf.sprintf ", age<=%d" worst_age else "")
    | Some t ->
      Printf.sprintf "%s@t%d (%s, age %d)"
        (String.uppercase_ascii (Origin_validation.state_to_string final_state))
        t (short_channel final_channel) worst_age
  in
  let grid = (* (intensity, (policy_name, timeline) list) list *)
    List.map
      (fun intensity ->
        (intensity, List.map (fun (pn, p) -> (pn, run_cell ~policy:p ~intensity)) policies))
      intensities
  in
  let t =
    Table.create
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Left) policies)
      ("stall x" :: List.map fst policies)
  in
  List.iter
    (fun (intensity, cells) ->
      Table.add_row t
        (string_of_int intensity :: List.map (fun (_, tl) -> cell_summary tl) cells))
    grid;
  Table.print t;
  Printf.printf
    "\nVictim route: 63.174.16.0/20 via AS %d; Sprint's covering /12-13 ROA stays\n\
     fresh, so once the stalled cache's ROAs expire the route turns INVALID and\n\
     is dropped.  Mirror/RRDP fallback keeps serving fresh data instead.\n"
    Model.as_continental;
  (* the two extreme cells, tick by tick *)
  let worst = List.fold_left max 0 intensities in
  List.iter
    (fun pn ->
      match List.assoc_opt worst grid with
      | None -> ()
      | Some cells ->
        let timeline = List.assoc pn cells in
        Printf.printf "\n%s policy under stall x%d:\n" pn worst;
        let tt =
          Table.create
            ~aligns:[ Table.Right; Table.Left; Table.Left; Table.Left; Table.Right; Table.Right ]
            [ "tick"; "continental via"; "route"; "probe"; "data age"; "sync time" ]
        in
        List.iter
          (fun (now, state, channel, (r : Rpki_sim.Loop.tick_record)) ->
            Table.add_row tt
              [ string_of_int now;
                channel;
                Origin_validation.state_to_string state;
                (if List.assoc "continental-repo" r.Rpki_sim.Loop.probe_results then "up"
                 else "DOWN");
                string_of_int r.Rpki_sim.Loop.max_data_age;
                Printf.sprintf "%d%s" r.Rpki_sim.Loop.sync_elapsed
                  (if r.Rpki_sim.Loop.budget_exhausted then "!" else "") ])
          timeline;
        Table.print tt)
    [ "naive"; "resilient" ];
  Printf.printf
    "\n'!' marks a sync whose fetch budget ran out.  The naive policy spends its\n\
     entire budget re-trying the stalled point (starving points after it in the\n\
     walk); the resilient policy cuts losses and falls back to mirror/RRDP.\n";
  (* machine-readable grid *)
  let json_body =
    let cell_json (intensity, cells) =
      List.map
        (fun (pn, timeline) ->
          let tick_json (now, state, channel, (r : Rpki_sim.Loop.tick_record)) =
            Printf.sprintf
              "{\"tick\":%d,\"route\":\"%s\",\"channel\":\"%s\",\"probe_up\":%b,\
               \"data_age\":%d,\"sync_elapsed\":%d,\"budget_exhausted\":%b}"
              now
              (Origin_validation.state_to_string state)
              channel
              (List.assoc "continental-repo" r.Rpki_sim.Loop.probe_results)
              r.Rpki_sim.Loop.max_data_age r.Rpki_sim.Loop.sync_elapsed
              r.Rpki_sim.Loop.budget_exhausted
          in
          Printf.sprintf "{\"policy\":\"%s\",\"intensity\":%d,\"timeline\":[%s]}" pn intensity
            (String.concat "," (List.map tick_json timeline)))
        cells
    in
    Printf.sprintf
      "{\"experiment\":\"stall\",\"ticks\":%d,\"attack_at\":%d,\"validity\":%d,\
       \"refresh_interval\":%d,\"cells\":[%s]}"
      ticks attack_at validity refresh_interval
      (String.concat "," (List.concat_map cell_json grid))
  in
  write_json ~name:"stall" json_body

(* ------------------------------------------------------------------ *)
(* Transparency: split-view detection x vantages x gossip period       *)
(* ------------------------------------------------------------------ *)

let transparency () =
  header "Transparency: split-view detection (vantages x gossip period x stealth)";
  let ticks = if !quick then 8 else 12 in
  let grace = 4 in
  let attack_at = 3 in
  let monitor_counts = if !quick then [ 0; 2 ] else [ 0; 1; 2; 3 ] in
  let periods = if !quick then [ 1 ] else [ 1; 2; 3 ] in
  let stealths =
    if !quick then [ Split_view.Stealthy ] else [ Split_view.Stealthy; Split_view.Overt ]
  in
  let run_cell ~monitors ~period ~stealth =
    let sv = Rpki_sim.Loop.split_view_scenario ~monitors ~grace ~gossip_period:period () in
    let sim = sv.Rpki_sim.Loop.sv_sim in
    let atk =
      Split_view.plan ~authority:sv.Rpki_sim.Loop.sv_model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ~stealth ()
    in
    for now = 1 to ticks do
      if now = attack_at then Split_view.apply atk (Rpki_sim.Loop.transport sim);
      ignore (Rpki_sim.Loop.step sim ~now)
    done;
    let history = Rpki_sim.Loop.history sim in
    let fork_tick = Rpki_sim.Loop.first_fork_tick sim in
    let invalid_tick =
      List.find_map
        (fun (r : Rpki_sim.Loop.tick_record) ->
          if List.assoc "continental-repo" r.Rpki_sim.Loop.probe_results then None
          else Some r.Rpki_sim.Loop.time)
        history
    in
    let proof_bytes =
      List.fold_left
        (fun acc (r : Rpki_sim.Loop.tick_record) ->
          match r.Rpki_sim.Loop.gossip_report with
          | Some rep -> acc + rep.Gossip.r_proof_bytes
          | None -> acc)
        0 history
    in
    (* a single inclusion proof against the victim's final log, for scale *)
    let vlog = Relying_party.transparency_log sim.Rpki_sim.Loop.rp in
    let log_size = Rpki_transparency.Log.size vlog in
    let one_proof_bytes =
      if log_size = 0 then 0
      else
        Rpki_transparency.Merkle.proof_bytes
          (Rpki_transparency.Log.inclusion_proof vlog ~index:0 ~size:log_size)
    in
    (fork_tick, invalid_tick, proof_bytes, log_size, one_proof_bytes)
  in
  let cells =
    List.concat_map
      (fun stealth ->
        List.concat_map
          (fun period ->
            List.map
              (fun monitors -> (stealth, period, monitors, run_cell ~monitors ~period ~stealth))
              monitor_counts)
          periods)
      stealths
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Left; Table.Right; Table.Left;
          Table.Right; Table.Right ]
      [ "stealth"; "period"; "vantages"; "fork detected"; "latency"; "route invalid";
        "margin"; "proof B" ]
  in
  List.iter
    (fun (stealth, period, monitors, (fork, invalid, proof_bytes, _, _)) ->
      let fork_s, lat_s =
        match fork with
        | Some tk -> (Printf.sprintf "t%d" tk, string_of_int (tk - attack_at))
        | None -> ((if monitors = 0 then "missed (no mesh)" else "missed"), "-")
      in
      let invalid_s =
        match invalid with Some tk -> Printf.sprintf "t%d" tk | None -> "never"
      in
      let margin_s =
        match (fork, invalid) with
        | Some f, Some i -> string_of_int (i - f)
        | _ -> "-"
      in
      Table.add_row t
        [ Split_view.stealth_to_string stealth; string_of_int period;
          string_of_int (monitors + 1); fork_s; lat_s; invalid_s; margin_s;
          string_of_int proof_bytes ])
    cells;
  Table.print t;
  let _, _, _, (_, _, _, log_size, one_proof) =
    List.nth cells (List.length cells - 1)
  in
  Printf.printf
    "\nVictim route: 63.174.16.0/20 via AS %d; the fork suppresses its ROA only in\n\
     the victim's view.  Grace holds the VRP %d ticks, so 'margin' is how many\n\
     ticks before the route died the fork alarm fired.  One vantage ('no mesh')\n\
     never detects: the stealthy fork is locally clean.  Victim log: %d\n\
     observations; one inclusion proof at that size: %d bytes.\n"
    Model.as_continental grace log_size one_proof;
  write_json ~name:"transparency"
    (Printf.sprintf
       "{\"experiment\":\"transparency\",\"ticks\":%d,\"attack_at\":%d,\"grace\":%d,\
        \"cells\":[%s]}"
       ticks attack_at grace
       (String.concat ","
          (List.map
             (fun (stealth, period, monitors, (fork, invalid, proof_bytes, log_size, one_proof)) ->
               let opt = function Some tk -> string_of_int tk | None -> "null" in
               Printf.sprintf
                 "{\"stealth\":\"%s\",\"gossip_period\":%d,\"vantages\":%d,\
                  \"fork_tick\":%s,\"invalid_tick\":%s,\"detection_latency\":%s,\
                  \"detected_before_invalid\":%b,\"proof_bytes\":%d,\
                  \"victim_log_size\":%d,\"inclusion_proof_bytes\":%d}"
                 (Split_view.stealth_to_string stealth)
                 period (monitors + 1) (opt fork) (opt invalid)
                 (match fork with Some tk -> string_of_int (tk - attack_at) | None -> "null")
                 (match (fork, invalid) with Some f, Some i -> f < i | _ -> false)
                 proof_bytes log_size one_proof)
             cells)))

(* ------------------------------------------------------------------ *)
(* Restart: durable state x disk faults x the rollback adversary       *)
(* ------------------------------------------------------------------ *)

(* Timeline per cell: two healthy ticks (the adversary captures the
   authority's state at the end of t2), a ROA revocation at t3 (the honest
   change the rollback will undo — (63.174.25.0/24, AS 17054), chosen so the
   repository's own route is untouched), convergence and snapshots through
   t5, then the victim is killed right after its (possibly fault-corrupted)
   last save and the frozen t2 state is installed as its per-client view.
   The victim restarts at [restart_at] and the run continues to [ticks].

   Measured per cell: the typed recovery outcome, whether and when the
   served rollback was detected (own restored history, or a gossip Rollback
   alarm), and whether the resurrected VRP is router-visible at the end —
   the attack's actual yield. *)
let restart () =
  header "Restart: durable state x disk faults x rollback adversary";
  let ticks = if !quick then 9 else 12 in
  let revoke_at = 3 and capture_at = 2 and kill_after = 5 in
  let restarts = if !quick then [ 6 ] else [ 6; 8 ] in
  let faults =
    if !quick then [ None; Some (Rpki_persist.Disk.Bit_flip 12345) ]
    else
      [ None; Some Rpki_persist.Disk.Torn_write; Some Rpki_persist.Disk.Partial_flush;
        Some (Rpki_persist.Disk.Bit_flip 12345); Some Rpki_persist.Disk.Drop_rename ]
  in
  let victim = "victim-rp" in
  let target_prefix = V4.p "63.174.25.0/24" in
  let run_cell ~persist ~fault ~restart_at =
    let rig = Rpki_sim.Loop.restart_scenario ~persist ~grace:0 ~monitors:2 ~gossip_period:1 () in
    let sv = rig.Rpki_sim.Loop.rr_sv in
    let sim = sv.Rpki_sim.Loop.sv_sim in
    let model = sv.Rpki_sim.Loop.sv_model in
    let atk = Rollback.plan ~authority:model.Model.continental in
    let serial_at_kill = ref 0 in
    let recovery = ref None in
    for now = 1 to ticks do
      if now = revoke_at then
        Authority.revoke_roa model.Model.continental ~filename:model.Model.roa_cb_25 ~now;
      (* arm the one-shot disk fault so it fires on the victim's *last*
         pre-crash snapshot write (the primary saves first each tick) *)
      if now = kill_after then
        Option.iter (Rpki_persist.Disk.inject rig.Rpki_sim.Loop.rr_disk) fault;
      if now = restart_at then
        recovery :=
          Some
            (Rpki_sim.Loop.restart_vantage sim ~name:victim ~now
               ~make:rig.Rpki_sim.Loop.rr_respawn);
      ignore (Rpki_sim.Loop.step sim ~now);
      if now = capture_at then Rollback.capture atk ~now;
      if now = kill_after then begin
        serial_at_kill := Rpki_rtr.Session.cache_serial (Rpki_sim.Loop.rtr_cache sim);
        Rpki_sim.Loop.kill_vantage sim ~name:victim;
        Rollback.apply atk (Rpki_sim.Loop.transport sim)
      end
    done;
    let history = Rpki_sim.Loop.history sim in
    let detect = Rpki_sim.Loop.first_rollback_tick sim in
    let local_detect =
      List.exists
        (fun (r : Rpki_sim.Loop.tick_record) -> r.Rpki_sim.Loop.regressions <> [])
        history
    in
    let gossip_rollback, log_resets =
      List.fold_left
        (fun (rb, lr) (r : Rpki_sim.Loop.tick_record) ->
          match r.Rpki_sim.Loop.gossip_report with
          | None -> (rb, lr)
          | Some rep ->
            ( rb || List.exists Gossip.is_rollback rep.Gossip.r_alarms,
              lr
              + List.length
                  (List.filter
                     (function Gossip.Log_reset _ -> true | _ -> false)
                     rep.Gossip.r_alarms) ))
        (false, 0) history
    in
    let vrp_present l =
      List.exists (fun (v : Vrp.t) -> V4.Prefix.equal v.Vrp.prefix target_prefix) l
    in
    let router_visible =
      vrp_present (Rpki_rtr.Session.cache_vrps (Rpki_sim.Loop.rtr_cache sim))
    in
    let victim_believes = vrp_present (Relying_party.vrps sim.Rpki_sim.Loop.rp) in
    let restart_rec =
      List.find_opt
        (fun (r : Rpki_sim.Loop.tick_record) -> r.Rpki_sim.Loop.time = restart_at)
        history
    in
    let restart_diff =
      match restart_rec with
      | Some r -> Vrp.diff_size r.Rpki_sim.Loop.vrp_diff
      | None -> 0
    in
    let serial_after =
      match restart_rec with Some r -> r.Rpki_sim.Loop.rtr_serial | None -> 0
    in
    let final_holds =
      match List.rev history with
      | r :: _ -> r.Rpki_sim.Loop.rtr_holds
      | [] -> 0
    in
    let snapshot_bytes =
      if persist then
        Rpki_persist.Store.snapshot_bytes (Rpki_sim.Loop.vantage_store sim ~name:victim)
      else 0
    in
    ( Option.get !recovery, detect, local_detect, gossip_rollback, log_resets,
      router_visible, victim_believes, restart_diff, !serial_at_kill, serial_after,
      final_holds, snapshot_bytes )
  in
  let fault_name = function
    | None -> "none"
    | Some f -> Rpki_persist.Disk.fault_to_string f
  in
  let cells =
    List.concat_map
      (fun restart_at ->
        List.map
          (fun fault -> (true, fault, restart_at, run_cell ~persist:true ~fault ~restart_at))
          faults
        @ [ (false, None, restart_at, run_cell ~persist:false ~fault:None ~restart_at) ])
      restarts
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Left; Table.Left; Table.Right;
          Table.Left; Table.Right; Table.Right ]
      [ "persist"; "fault"; "restart"; "recovery"; "detected"; "latency";
        "attack yield"; "resync diff"; "snap B" ]
  in
  List.iter
    (fun (persist, fault, restart_at,
          ( recovery, detect, local, rollback, _resets, router_visible, _believes,
            restart_diff, _sk, _sa, _holds, snap_bytes )) ->
      let detect_s, lat_s =
        match detect with
        | Some tk ->
          ( Printf.sprintf "t%d (%s)" tk
              (match (local, rollback) with
              | true, true -> "own log + gossip"
              | true, false -> "own log"
              | false, true -> "gossip"
              | false, false -> "?"),
            string_of_int (tk - restart_at) )
        | None -> ("missed", "-")
      in
      Table.add_row t
        [ (if persist then "on" else "off"); fault_name fault;
          Printf.sprintf "t%d" restart_at;
          Relying_party.recovery_to_string recovery; detect_s; lat_s;
          (if router_visible then "VRP resurrected" else "held/none");
          string_of_int restart_diff; string_of_int snap_bytes ])
    cells;
  Table.print t;
  Printf.printf
    "\nThe adversary replays the authority's authentic t%d state to the restarted\n\
     victim, undoing the t%d revocation of (63.174.25.0/24, AS %d).  The replay is\n\
     *not* equivocation — peers once recorded those exact bytes — so only history\n\
     detects it: the victim's restored log (serial regression) or the monitors'\n\
     memory of its serial line (gossip Rollback).  Every injected disk fault must\n\
     degrade to an explicit Recovered_fresh state, never a silent trust.\n"
    capture_at revoke_at Model.as_continental;
  (* the headline asymmetry this PR exists to measure — fail loudly (and
     fail `dune runtest`) if it ever stops holding *)
  List.iter
    (fun (persist, fault, _restart_at,
          ( recovery, detect, _local, _rollback, _resets, router_visible, _believes,
            _diff, _sk, _sa, _holds, _snap )) ->
      match (persist, fault, recovery) with
      | true, None, Relying_party.Recovered _ ->
        if detect = None then failwith "restart: persisted victim missed the rollback";
        if router_visible then
          failwith "restart: resurrected VRP router-visible despite detection"
      | true, None, Relying_party.Recovered_fresh _ ->
        failwith "restart: fault-free snapshot failed to restore"
      | true, Some _, Relying_party.Recovered_fresh Relying_party.No_snapshot
      | true, Some _, Relying_party.Recovered _ ->
        failwith "restart: injected disk fault did not surface as an explicit degraded state"
      | true, Some _, Relying_party.Recovered_fresh _ -> ()
      | false, _, Relying_party.Recovered _ ->
        failwith "restart: recovered state without persistence"
      | false, _, Relying_party.Recovered_fresh _ ->
        if detect <> None then
          failwith "restart: rollback detected without any persisted baseline";
        if not router_visible then
          failwith "restart: fresh-start victim should have accepted the replayed VRP")
    cells;
  Printf.printf
    "Asymmetry holds: persistence on => detected (evidence), off => silent.\n";
  write_json ~name:"restart"
    (Printf.sprintf
       "{\"experiment\":\"restart\",\"ticks\":%d,\"capture_at\":%d,\"revoke_at\":%d,\
        \"killed_after\":%d,\"cells\":[%s]}"
       ticks capture_at revoke_at kill_after
       (String.concat ","
          (List.map
             (fun (persist, fault, restart_at,
                   ( recovery, detect, local, rollback, resets, router_visible,
                     believes, restart_diff, sk, sa, holds, snap_bytes )) ->
               let opt = function Some tk -> string_of_int tk | None -> "null" in
               Printf.sprintf
                 "{\"persist\":%b,\"fault\":\"%s\",\"restart_at\":%d,\
                  \"recovery\":\"%s\",\"detect_tick\":%s,\"detection_latency\":%s,\
                  \"own_log_regression\":%b,\"gossip_rollback\":%b,\"log_resets\":%d,\
                  \"attack_effective\":%b,\"victim_believes_replay\":%b,\
                  \"restart_diff_size\":%d,\"rtr_serial_at_kill\":%d,\
                  \"rtr_serial_after_restart\":%d,\"rtr_holds\":%d,\
                  \"snapshot_bytes\":%d}"
                 persist (fault_name fault) restart_at
                 (String.escaped (Relying_party.recovery_to_string recovery))
                 (opt detect)
                 (match detect with
                 | Some tk -> string_of_int (tk - restart_at)
                 | None -> "null")
                 local rollback resets router_visible believes restart_diff sk sa
                 holds snap_bytes)
             cells)))

(* ------------------------------------------------------------------ *)
(* Multi-vantage: the shared validation plane at scale                  *)
(* ------------------------------------------------------------------ *)

(* Two arms.

   Scaling: vantage counts x shared-cache on/off under worst-case churn
   (refresh_interval 1 + per-tick Authority.maintain: every publication
   point re-signs its CRL and manifest every tick, so nothing is memoizable
   across ticks and the per-vantage memo never hits).  Gossip is pushed
   beyond the horizon to isolate the validation plane.  Measured per cell:
   wall-clock per tick, RSA verifications executed (ground truth from the
   global counter) vs. answered by the shared verdict memo, and the cache
   hit rate.  Cache-off cost grows with vantages x objects; cache-on with
   distinct observed content.

   Detection identity: the full split-view scenario (gossip every tick,
   stealthy fork at t3) run twice, cache on and off.  The cache must be
   invisible: same per-tick VRP counts, probe results, serials and diffs,
   same fork detection tick, and byte-identical exported fork evidence. *)
let multivantage () =
  header "Multi-vantage: shared validation plane (vantages x cache)";
  let ticks = if !quick then 4 else 6 in
  let counts = if !quick then [ 4; 32 ] else [ 4; 32; 128; 256 ] in
  let run_cell ~vantages ~cache =
    let sv =
      Rpki_sim.Loop.split_view_scenario ~monitors:(vantages - 1)
        ~gossip_period:(ticks + 1) ~refresh_interval:1 ~valcache:cache ()
    in
    let sim = sv.Rpki_sim.Loop.sv_sim in
    let per_tick = ref [] in
    for now = 1 to ticks do
      Authority.maintain sv.Rpki_sim.Loop.sv_model.Model.arin ~now;
      let record, ms = time_ms (fun () -> Rpki_sim.Loop.step sim ~now) in
      per_tick := (record, ms) :: !per_tick
    done;
    let recs = List.rev !per_tick in
    let total_ms = List.fold_left (fun acc (_, ms) -> acc +. ms) 0. recs in
    let checks =
      List.fold_left (fun acc ((r : Rpki_sim.Loop.tick_record), _) -> acc + r.Rpki_sim.Loop.sig_checks) 0 recs
    in
    let saved =
      List.fold_left (fun acc ((r : Rpki_sim.Loop.tick_record), _) -> acc + r.Rpki_sim.Loop.sig_saved) 0 recs
    in
    let hit_rate =
      if checks + saved = 0 then 0. else float_of_int saved /. float_of_int (checks + saved)
    in
    (total_ms, List.map snd recs, checks, saved, hit_rate)
  in
  let cells =
    List.concat_map
      (fun vantages ->
        List.map (fun cache -> (vantages, cache, run_cell ~vantages ~cache)) [ false; true ])
      counts
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "vantages"; "cache"; "total ms"; "ms/tick"; "sig checks"; "sig saved"; "hit rate" ]
  in
  List.iter
    (fun (vantages, cache, (total_ms, _, checks, saved, hit_rate)) ->
      Table.add_row t
        [ string_of_int vantages;
          (if cache then "shared" else "off");
          Printf.sprintf "%.1f" total_ms;
          Printf.sprintf "%.2f" (total_ms /. float_of_int ticks);
          string_of_int checks; string_of_int saved;
          Printf.sprintf "%.3f" hit_rate ])
    cells;
  Table.print t;
  (* the cache must never make validation do more crypto *)
  List.iter
    (fun vantages ->
      let checks_of want =
        List.find_map
          (fun (v, c, (_, _, checks, _, _)) -> if v = vantages && c = want then Some checks else None)
          cells
        |> Option.get
      in
      if checks_of true > checks_of false then
        failwith
          (Printf.sprintf "multivantage: shared cache did MORE crypto at %d vantages" vantages);
      (* the acceptance bar: at >= 128 vantages the shared plane must cut
         signature verifications by at least 5x *)
      if vantages >= 128 && checks_of false < 5 * checks_of true then
        failwith
          (Printf.sprintf "multivantage: < 5x verification reduction at %d vantages" vantages))
    counts;
  (* --- detection identity: the cache must be invisible to split-view --- *)
  let detect_ticks = 8 and attack_at = 3 in
  let detection_run ~cache =
    let sv =
      Rpki_sim.Loop.split_view_scenario ~monitors:3 ~grace:4 ~gossip_period:1 ~valcache:cache ()
    in
    let sim = sv.Rpki_sim.Loop.sv_sim in
    let atk =
      Split_view.plan ~authority:sv.Rpki_sim.Loop.sv_model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ~stealth:Split_view.Stealthy ()
    in
    for now = 1 to detect_ticks do
      if now = attack_at then Split_view.apply atk (Rpki_sim.Loop.transport sim);
      ignore (Rpki_sim.Loop.step sim ~now)
    done;
    let trace =
      List.map
        (fun (r : Rpki_sim.Loop.tick_record) ->
          ( r.Rpki_sim.Loop.time, r.Rpki_sim.Loop.vrp_count, r.Rpki_sim.Loop.probe_results,
            r.Rpki_sim.Loop.rtr_serial,
            List.length r.Rpki_sim.Loop.vrp_diff.Vrp.added,
            List.length r.Rpki_sim.Loop.vrp_diff.Vrp.removed ))
        (Rpki_sim.Loop.history sim)
    in
    let checks =
      List.fold_left
        (fun acc (r : Rpki_sim.Loop.tick_record) -> acc + r.Rpki_sim.Loop.sig_checks)
        0 (Rpki_sim.Loop.history sim)
    in
    let evidence =
      match Rpki_sim.Loop.gossip_mesh sim with
      | None -> ""
      | Some g -> (
        match Gossip.forks g with
        | [] -> ""
        | alarm :: _ -> (
          let key_of name =
            List.find_map
              (fun (v : Gossip.vantage) ->
                if String.equal v.Gossip.v_name name then
                  Some (Relying_party.transparency_key v.Gossip.v_rp)
                else None)
              (Gossip.vantages g)
          in
          match Evidence.export ~key_of alarm with Ok bytes -> bytes | Error _ -> ""))
    in
    (Rpki_sim.Loop.first_fork_tick sim, trace, evidence, checks)
  in
  let fork_off, trace_off, evidence_off, checks_off = detection_run ~cache:false in
  let fork_on, trace_on, evidence_on, checks_on = detection_run ~cache:true in
  if fork_on <> fork_off then failwith "multivantage: cache changed the fork detection tick";
  if trace_on <> trace_off then failwith "multivantage: cache changed the per-tick results";
  if not (String.equal evidence_on evidence_off) then
    failwith "multivantage: cache changed the exported fork evidence bytes";
  if checks_on > checks_off then
    failwith "multivantage: shared cache did MORE crypto in the detection run";
  Printf.printf
    "\nWorst-case churn: every point re-signs CRL+manifest each tick, so the\n\
     per-vantage memo never hits and cache-off pays vantages x objects RSA\n\
     verifications; the shared plane verifies each distinct object once and\n\
     replays point outcomes content-addressed.  Detection identity: fork at %s\n\
     cache-on and cache-off, evidence bundles byte-identical (%d bytes).\n"
    (match fork_on with Some tk -> Printf.sprintf "t%d" tk | None -> "never")
    (String.length evidence_on);
  write_json ~name:"multivantage"
    (Printf.sprintf
       "{\"experiment\":\"multivantage\",\"ticks\":%d,\"refresh_interval\":1,\
        \"cells\":[%s],\"detection\":{\"ticks\":%d,\"attack_at\":%d,\"vantages\":4,\
        \"fork_tick_cache_on\":%s,\"fork_tick_cache_off\":%s,\"identical_traces\":%b,\
        \"identical_evidence\":%b,\"evidence_bytes\":%d,\
        \"sig_checks_cache_on\":%d,\"sig_checks_cache_off\":%d}}"
       ticks
       (String.concat ","
          (List.map
             (fun (vantages, cache, (total_ms, per_tick, checks, saved, hit_rate)) ->
               Printf.sprintf
                 "{\"vantages\":%d,\"cache\":%b,\"total_ms\":%.2f,\"per_tick_ms\":[%s],\
                  \"sig_checks\":%d,\"sig_saved\":%d,\"hit_rate\":%.4f}"
                 vantages cache total_ms
                 (String.concat "," (List.map (Printf.sprintf "%.2f") per_tick))
                 checks saved hit_rate)
             cells))
       detect_ticks attack_at
       (match fork_on with Some tk -> string_of_int tk | None -> "null")
       (match fork_off with Some tk -> string_of_int tk | None -> "null")
       (trace_on = trace_off)
       (String.equal evidence_on evidence_off)
       (String.length evidence_on) checks_on checks_off)

(* ------------------------------------------------------------------ *)
(* RTR serving plane: one cache, thousands of sessions                 *)
(* ------------------------------------------------------------------ *)

(* The serving-plane claim: response bytes are encoded once per serial and
   replayed, so bytes-encoded-per-serial is flat in the session count while
   a per-session [Session.serve] re-encodes everything for every router.
   The sweep drives a deterministic churn workload through
   [Rpki_rtr.Server] at increasing session counts, checks after every
   batched notify that all sessions converged to the cache's exact VRP set
   (a mid-run hold included), and closes with a per-session baseline arm
   and a Domain sweep that must not change a single accounting byte. *)
let rtr () =
  header "RTR serving plane: encode-once deltas, batched notify (sessions x churn)";
  let module Server = Rpki_rtr.Server in
  let module Session = Rpki_rtr.Session in
  let module Pdu = Rpki_rtr.Pdu in
  let ticks = if !quick then 8 else 20 in
  let universe = if !quick then 200 else 1000 in
  let session_counts = if !quick then [ 16; 128 ] else [ 16; 64; 256; 1024; 4096 ] in
  let churn_levels = if !quick then [ 8 ] else [ 8; 64 ] in
  (* tick [t]'s VRP set: a stable universe where the first [churn] prefixes
     re-originate every tick — each serial is churn announcements plus churn
     withdrawals, the steady drip of a production cache *)
  let set_at ~churn t =
    List.init universe (fun i ->
        let asn = if i < churn then 1000 + t else 100 + (i mod 50) in
        Vrp.make (V4.Prefix.make ((10 lsl 24) lor (i lsl 8)) 24) asn)
  in
  let hold_prefix = V4.Prefix.make (10 lsl 24) 24 in
  let run_cell ~sessions ~churn ~domains =
    let server = Server.create () in
    let _ = List.init sessions (fun _ -> Server.attach server) in
    Server.publish server (set_at ~churn 0);
    ignore (Server.flush ~domains server);
    let converge_ms = ref 0. in
    for t = 1 to ticks do
      Server.publish server (set_at ~churn t);
      (* a mid-run evidence hold rides the same batch as that tick's serial *)
      if t = ticks / 2 then
        Server.hold server ~prefix:hold_prefix
          ~vrps:[ Vrp.make hold_prefix 9999 ];
      if t = (3 * ticks) / 4 then Server.release server ~prefix:hold_prefix;
      let _, ms = time_ms (fun () -> Server.flush ~domains server) in
      converge_ms := !converge_ms +. ms;
      if not (Server.all_synced server) then
        failwith
          (Printf.sprintf
             "rtr: sessions diverged after flush (sessions=%d tick=%d)" sessions t)
    done;
    (Server.stats server, !converge_ms)
  in
  (* the pre-server baseline: every router synced by its own Session.serve
     call, every response encoded from scratch *)
  let run_baseline ~sessions ~churn =
    let cache = Session.create_cache () in
    let routers = List.init sessions (fun _ -> Session.create_router ()) in
    let bytes = ref 0 in
    let sync_all () =
      List.iter
        (fun r ->
          let q =
            match Session.router_session r with
            | Some sid ->
              Pdu.encode
                (Pdu.Serial_query { session_id = sid; serial = Session.router_serial r })
            | None -> Pdu.encode Pdu.Reset_query
          in
          let resp = Session.serve cache q in
          bytes := !bytes + String.length resp;
          match Session.apply_response r resp with
          | `Synced -> ()
          | `Reset_required -> failwith "rtr: baseline reset")
        routers
    in
    Session.publish cache (set_at ~churn 0);
    sync_all ();
    for t = 1 to ticks do
      Session.publish cache (set_at ~churn t);
      sync_all ()
    done;
    !bytes
  in
  let cells =
    List.concat_map
      (fun sessions ->
        List.map (fun churn -> (sessions, churn, run_cell ~sessions ~churn ~domains:1))
          churn_levels)
      session_counts
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "sessions"; "churn"; "serials"; "enc B/serial"; "bytes sent"; "ms/batch";
        "sess-syncs/s" ]
  in
  let per_serial (st : Server.stats) =
    float_of_int st.Server.bytes_encoded /. float_of_int (max 1 st.Server.serial_bumps)
  in
  List.iter
    (fun (sessions, churn, ((st : Server.stats), ms)) ->
      let batches = max 1 st.Server.notify_batches in
      Table.add_row t
        [ string_of_int sessions; string_of_int churn;
          string_of_int st.Server.serial_bumps;
          Printf.sprintf "%.0f" (per_serial st);
          string_of_int st.Server.bytes_sent;
          Printf.sprintf "%.2f" (ms /. float_of_int batches);
          Printf.sprintf "%.0f"
            (float_of_int (sessions * batches) /. (max 1e-6 ms /. 1000.)) ])
    cells;
  Table.print t;
  (* bytes encoded per serial must be flat in the session count: the
     workload is identical, so the counters must be *equal*, not close *)
  List.iter
    (fun churn ->
      let enc_of want =
        List.find_map
          (fun (s, c, ((st : Server.stats), _)) ->
            if s = want && c = churn then Some st.Server.bytes_encoded else None)
          cells
        |> Option.get
      in
      let lo = List.hd session_counts
      and hi = List.nth session_counts (List.length session_counts - 1) in
      if enc_of lo <> enc_of hi then
        failwith
          (Printf.sprintf
             "rtr: bytes encoded varies with session count at churn %d (%d vs %d)"
             churn (enc_of lo) (enc_of hi)))
    churn_levels;
  (* the acceptance bar: at the big session count the shared buffers must
     beat per-session encoding by >= 50x *)
  let big = if !quick then 128 else 1024 in
  let churn0 = List.hd churn_levels in
  let baseline_bytes = run_baseline ~sessions:big ~churn:churn0 in
  let server_bytes =
    List.find_map
      (fun (s, c, ((st : Server.stats), _)) ->
        if s = big && c = churn0 then Some st.Server.bytes_encoded else None)
      cells
    |> Option.get
  in
  let reduction = float_of_int baseline_bytes /. float_of_int (max 1 server_bytes) in
  Printf.printf
    "\nper-session baseline at %d sessions: %d bytes encoded vs %d shared (%.0fx)\n"
    big baseline_bytes server_bytes reduction;
  if reduction < 50. then
    failwith
      (Printf.sprintf "rtr: only %.1fx encode reduction at %d sessions" reduction big);
  (* Domains must be invisible in the accounting: same stats to the byte *)
  let domain_counts = [ 1; 2; 4 ] in
  let dstats =
    List.map
      (fun domains ->
        let st, _ = run_cell ~sessions:(min big 256) ~churn:churn0 ~domains in
        (domains, st))
      domain_counts
  in
  let _, st1 = List.hd dstats in
  List.iter
    (fun (domains, st) ->
      if st <> st1 then
        failwith (Printf.sprintf "rtr: accounting changed under %d domains" domains))
    dstats;
  Printf.printf "domain sweep (%s): accounting identical to the byte\n"
    (String.concat "/" (List.map string_of_int domain_counts));
  write_json ~name:"rtr"
    (Printf.sprintf
       "{\"experiment\":\"rtr\",\"ticks\":%d,\"universe\":%d,\"cells\":[%s],\
        \"baseline\":{\"sessions\":%d,\"bytes_encoded\":%d,\"server_bytes_encoded\":%d,\
        \"reduction\":%.1f},\"domain_sweep\":{\"domains\":[%s],\"identical\":true}}"
       ticks universe
       (String.concat ","
          (List.map
             (fun (sessions, churn, ((st : Server.stats), ms)) ->
               let batches = max 1 st.Server.notify_batches in
               Printf.sprintf
                 "{\"sessions\":%d,\"churn\":%d,\"serials\":%d,\"notify_batches\":%d,\
                  \"bytes_encoded\":%d,\"bytes_encoded_per_serial\":%.1f,\
                  \"bytes_sent\":%d,\"replays\":%d,\"ms_per_batch\":%.3f,\
                  \"session_syncs_per_sec\":%.0f}"
                 sessions churn st.Server.serial_bumps st.Server.notify_batches
                 st.Server.bytes_encoded (per_serial st) st.Server.bytes_sent
                 st.Server.replays
                 (ms /. float_of_int batches)
                 (float_of_int (sessions * batches) /. (max 1e-6 ms /. 1000.)))
             cells))
       big baseline_bytes server_bytes reduction
       (String.concat "," (List.map string_of_int domain_counts)))

(* ------------------------------------------------------------------ *)
(* Soak: long-run endurance                                            *)
(* ------------------------------------------------------------------ *)

(* Three arms, all driven through the canned soak scenario or the canned
   detection scenarios with the endurance knobs flipped:

   1. disk cost — segmented O(delta) saves + periodic compaction vs the
      pre-segmentation O(history) full snapshots, same ticks and churn;
   2. memory — Valcache residency under per-tick churn with epoch
      eviction on vs off (flat vs monotone), plus Gc live words across
      the segmented run;
   3. equivalence — the endurance knobs are pure cost: the split-view
      and restart detection timelines must produce byte-identical
      detection traces with the knobs on and off. *)

let detection_trace history =
  let line (r : Rpki_sim.Loop.tick_record) =
    Printf.sprintf "t%d vrps=%d issues=%d diff=%d serial=%d holds=%d fail=[%s] probe=[%s] regress=[%s] gossip=[%s]"
      r.Rpki_sim.Loop.time r.Rpki_sim.Loop.vrp_count r.Rpki_sim.Loop.issue_count
      (Vrp.diff_size r.Rpki_sim.Loop.vrp_diff)
      r.Rpki_sim.Loop.rtr_serial r.Rpki_sim.Loop.rtr_holds
      (String.concat ";" r.Rpki_sim.Loop.fetch_failures)
      (String.concat ";"
         (List.map
            (fun (n, ok) -> Printf.sprintf "%s:%b" n ok)
            r.Rpki_sim.Loop.probe_results))
      (String.concat ";"
         (List.map Relying_party.regression_to_string r.Rpki_sim.Loop.regressions))
      (match r.Rpki_sim.Loop.gossip_report with
      | None -> "-"
      | Some rep ->
        String.concat ";" (List.map Gossip.describe_alarm rep.Gossip.r_alarms))
  in
  String.concat "\n" (List.rev_map line history)

(* Flip the endurance knobs on a running sim: [on] is the segmented /
   evicting / compacting configuration, [off] the pre-refactor baseline
   (full snapshots, no eviction, no compaction). *)
let set_endurance sim ~on =
  sim.Rpki_sim.Loop.valcache_evict <- on;
  sim.Rpki_sim.Loop.compact_every <- (if on then 4 else 0);
  sim.Rpki_sim.Loop.save_full <- not on

let soak_split_view_trace ~endurance =
  let rig = Rpki_sim.Loop.restart_scenario ~persist:true ~grace:4 ~monitors:2 ~gossip_period:1 () in
  let sv = rig.Rpki_sim.Loop.rr_sv in
  let sim = sv.Rpki_sim.Loop.sv_sim in
  set_endurance sim ~on:endurance;
  let atk =
    Split_view.plan ~authority:sv.Rpki_sim.Loop.sv_model.Model.continental
      ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ()
  in
  for now = 1 to 10 do
    if now = 3 then Split_view.apply atk (Rpki_sim.Loop.transport sim);
    ignore (Rpki_sim.Loop.step sim ~now)
  done;
  detection_trace (Rpki_sim.Loop.history sim)

let soak_restart_trace ~endurance =
  let rig = Rpki_sim.Loop.restart_scenario ~persist:true ~grace:0 ~monitors:2 ~gossip_period:1 () in
  let sv = rig.Rpki_sim.Loop.rr_sv in
  let sim = sv.Rpki_sim.Loop.sv_sim in
  let model = sv.Rpki_sim.Loop.sv_model in
  set_endurance sim ~on:endurance;
  let atk = Rollback.plan ~authority:model.Model.continental in
  for now = 1 to 12 do
    if now = 3 then
      Authority.revoke_roa model.Model.continental ~filename:model.Model.roa_cb_25 ~now;
    if now = 6 then
      ignore
        (Rpki_sim.Loop.restart_vantage sim ~name:"victim-rp" ~now
           ~make:rig.Rpki_sim.Loop.rr_respawn);
    ignore (Rpki_sim.Loop.step sim ~now);
    if now = 2 then Rollback.capture atk ~now;
    if now = 5 then begin
      Rpki_sim.Loop.kill_vantage sim ~name:"victim-rp";
      Rollback.apply atk (Rpki_sim.Loop.transport sim)
    end
  done;
  detection_trace (Rpki_sim.Loop.history sim)

let soak () =
  header "Soak: long-run endurance (segments vs snapshots, eviction, traces)";
  (* --- arm 1: disk bytes per save, segmented vs full snapshots --- *)
  let ticks = if !quick then 400 else 5000 in
  (* the full-snapshot baseline's per-save cost grows with the log, so a
     shorter baseline run UNDERSTATES it: the reported ratio is a
     conservative lower bound (and the quick arms are same-length) *)
  let full_ticks = if !quick then 400 else 1000 in
  let base_cfg =
    { Rpki_sim.Loop.default_soak with
      Rpki_sim.Loop.sk_ticks = ticks; sk_churn_every = 6; sk_monitors = 1;
      sk_compact_every = (if !quick then 64 else 256);
      sk_sample_every = max 1 (ticks / 10) }
  in
  Printf.printf "running segmented arm (%d ticks)...\n%!" ticks;
  let seg = Rpki_sim.Loop.run_soak ~config:base_cfg () in
  Printf.printf "running full-snapshot baseline (%d ticks)...\n%!" full_ticks;
  let full =
    Rpki_sim.Loop.run_soak
      ~config:
        { base_cfg with
          Rpki_sim.Loop.sk_ticks = full_ticks; sk_full_snapshots = true;
          sk_compact_every = 0; sk_sample_every = max 1 (full_ticks / 10) }
      ()
  in
  let ratio = full.Rpki_sim.Loop.so_bytes_per_save /. Float.max 1.0 seg.Rpki_sim.Loop.so_bytes_per_save in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "mode"; "ticks"; "saves"; "bytes/save"; "final snap B"; "final chain B" ]
  in
  let last r = List.nth r.Rpki_sim.Loop.so_samples (List.length r.Rpki_sim.Loop.so_samples - 1) in
  List.iter
    (fun (name, (r : Rpki_sim.Loop.soak_report)) ->
      let s = last r in
      Table.add_row t
        [ name; string_of_int r.Rpki_sim.Loop.so_config.Rpki_sim.Loop.sk_ticks;
          string_of_int r.Rpki_sim.Loop.so_saves;
          Printf.sprintf "%.0f" r.Rpki_sim.Loop.so_bytes_per_save;
          string_of_int s.Rpki_sim.Loop.so_snapshot_bytes;
          string_of_int s.Rpki_sim.Loop.so_chain_bytes ])
    [ ("segmented+compact", seg); ("full snapshots", full) ];
  Table.print t;
  Printf.printf
    "\nbytes-per-save ratio (full / segmented): %.1fx%s\n" ratio
    (if full_ticks < ticks then
       Printf.sprintf
         " (baseline truncated at %d ticks; its per-save cost grows with the \
          log, so this is a lower bound)"
         full_ticks
     else "");
  let min_ratio = if !quick then 3.0 else 10.0 in
  if ratio < min_ratio then
    failwith
      (Printf.sprintf "soak: segmented saves only %.1fx cheaper (need >= %.0fx)" ratio min_ratio);
  (* Gc flatness across the segmented run: the last sample's live words
     must not have drifted far above the first post-warmup sample's. *)
  (match seg.Rpki_sim.Loop.so_samples with
  | warm :: _ :: _ ->
    let final = last seg in
    let growth =
      float_of_int final.Rpki_sim.Loop.so_live_words
      /. float_of_int (max 1 warm.Rpki_sim.Loop.so_live_words)
    in
    Printf.printf "Gc live words: %d (t%d) -> %d (t%d), growth %.2fx\n"
      warm.Rpki_sim.Loop.so_live_words warm.Rpki_sim.Loop.so_tick
      final.Rpki_sim.Loop.so_live_words final.Rpki_sim.Loop.so_tick growth
  | _ -> ());
  (* --- arm 2: Valcache residency under churn, eviction on vs off --- *)
  let res_ticks = if !quick then 300 else 360 in
  let res_cfg =
    { Rpki_sim.Loop.default_soak with
      Rpki_sim.Loop.sk_ticks = res_ticks; sk_churn_every = 1; sk_monitors = 1;
      sk_validity = Some 48; sk_refresh_interval = Some 48;
      sk_sample_every = max 1 (res_ticks / 6) }
  in
  Printf.printf "\nrunning residency arm (2 x %d churned ticks)...\n%!" res_ticks;
  let evict_on = Rpki_sim.Loop.run_soak ~config:res_cfg () in
  let evict_off =
    Rpki_sim.Loop.run_soak ~config:{ res_cfg with Rpki_sim.Loop.sk_evict = false } ()
  in
  let resident (r : Rpki_sim.Loop.soak_report) =
    List.filter_map
      (fun (s : Rpki_sim.Loop.soak_sample) ->
        Option.map
          (fun (rs : Valcache.residency) ->
            (s.Rpki_sim.Loop.so_tick, rs.Valcache.rs_verdicts + rs.Valcache.rs_outcomes,
             rs.Valcache.rs_verdicts_evicted + rs.Valcache.rs_outcomes_evicted))
          s.Rpki_sim.Loop.so_residency)
      r.Rpki_sim.Loop.so_samples
  in
  let on_curve = resident evict_on and off_curve = resident evict_off in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "tick"; "resident (evict)"; "evicted"; "resident (no evict)" ]
  in
  List.iter2
    (fun (tk, on_res, on_ev) (_, off_res, _) ->
      Table.add_row t
        [ string_of_int tk; string_of_int on_res; string_of_int on_ev;
          string_of_int off_res ])
    on_curve off_curve;
  Table.print t;
  let final3 l = match List.rev l with (_, r, _) :: _ -> r | [] -> 0 in
  let mid3 l = match List.nth_opt l (List.length l / 2) with Some (_, r, _) -> r | None -> 0 in
  let on_final = final3 on_curve and off_final = final3 off_curve in
  if on_final >= off_final then
    failwith "soak: eviction did not reduce Valcache residency under churn";
  if on_final > 2 * max 1 (mid3 on_curve) then
    failwith "soak: evicting residency still growing (not flat under churn)";
  if off_final < mid3 off_curve then
    failwith "soak: non-evicting residency unexpectedly shrank";
  Printf.printf
    "\nResidency after %d ticks of per-tick churn: %d entries with eviction\n\
     (%d dropped over the run) vs %d without — flat vs monotone.\n"
    res_ticks on_final
    (match List.rev on_curve with (_, _, e) :: _ -> e | [] -> 0)
    off_final;
  (* --- arm 3: detection traces are invariant under the knobs --- *)
  let sv_on = soak_split_view_trace ~endurance:true in
  let sv_off = soak_split_view_trace ~endurance:false in
  if not (String.equal sv_on sv_off) then
    failwith "soak: split-view detection trace changed under endurance knobs";
  let rs_on = soak_restart_trace ~endurance:true in
  let rs_off = soak_restart_trace ~endurance:false in
  if not (String.equal rs_on rs_off) then
    failwith "soak: restart detection trace changed under endurance knobs";
  Printf.printf
    "Detection traces byte-identical with endurance knobs on/off:\n\
     split-view arm (%d trace bytes), restart arm (%d trace bytes).\n"
    (String.length sv_on) (String.length rs_on);
  let sample_json (s : Rpki_sim.Loop.soak_sample) =
    Printf.sprintf
      "{\"tick\":%d,\"live_words\":%d,\"snapshot_bytes\":%d,\"chain_bytes\":%d,\
       \"segments\":%d,\"save_bytes\":%d,\"log_size\":%d%s}"
      s.Rpki_sim.Loop.so_tick s.Rpki_sim.Loop.so_live_words
      s.Rpki_sim.Loop.so_snapshot_bytes s.Rpki_sim.Loop.so_chain_bytes
      s.Rpki_sim.Loop.so_segments s.Rpki_sim.Loop.so_save_bytes
      s.Rpki_sim.Loop.so_log_size
      (match s.Rpki_sim.Loop.so_residency with
      | None -> ""
      | Some rs ->
        Printf.sprintf
          ",\"resident\":%d,\"evicted\":%d"
          (rs.Valcache.rs_verdicts + rs.Valcache.rs_outcomes)
          (rs.Valcache.rs_verdicts_evicted + rs.Valcache.rs_outcomes_evicted))
  in
  let report_json (r : Rpki_sim.Loop.soak_report) =
    Printf.sprintf
      "{\"ticks\":%d,\"churn_every\":%d,\"compact_every\":%d,\"evict\":%b,\
       \"full_snapshots\":%b,\"saves\":%d,\"total_save_bytes\":%d,\
       \"bytes_per_save\":%.1f,\"samples\":[%s]}"
      r.Rpki_sim.Loop.so_config.Rpki_sim.Loop.sk_ticks
      r.Rpki_sim.Loop.so_config.Rpki_sim.Loop.sk_churn_every
      r.Rpki_sim.Loop.so_config.Rpki_sim.Loop.sk_compact_every
      r.Rpki_sim.Loop.so_config.Rpki_sim.Loop.sk_evict
      r.Rpki_sim.Loop.so_config.Rpki_sim.Loop.sk_full_snapshots
      r.Rpki_sim.Loop.so_saves r.Rpki_sim.Loop.so_total_save_bytes
      r.Rpki_sim.Loop.so_bytes_per_save
      (String.concat "," (List.map sample_json r.Rpki_sim.Loop.so_samples))
  in
  write_json ~name:"soak"
    (Printf.sprintf
       "{\"experiment\":\"soak\",\"bytes_per_save_ratio\":%.1f,\
        \"segmented\":%s,\"full\":%s,\"evict_on\":%s,\"evict_off\":%s,\
        \"traces_identical\":{\"split_view\":%b,\"restart\":%b}}"
       ratio (report_json seg) (report_json full) (report_json evict_on)
       (report_json evict_off)
       (String.equal sv_on sv_off) (String.equal rs_on rs_off))

(* ------------------------------------------------------------------ *)
(* Scale: detection on generated internet-scale worlds                 *)
(* ------------------------------------------------------------------ *)

(* The world-generator sweep: grow a preferential-attachment AS graph,
   synthesize an RPKI universe onto it (RIR root, per-ISP CAs over the
   heavy customer cones, cover ROA on the deepest stub), place monitor
   vantages by degree, and re-run the split-view attack end to end at
   each size.  Published per size: world synthesis and rig construction
   time, per-tick convergence time of the closed loop (transport priced
   off the generated data plane), fork detection latency relative to the
   attack tick, and the exported fork-evidence proof bytes.  Hard bar:
   detection must succeed at EVERY size under degree placement — the
   curve is only interesting if the mechanism survives the scale. *)
let scale () =
  header "Scale: split-view detection vs generated topology size";
  let module World = Rpki_world.Synthesis in
  let module Placement = Rpki_world.Placement in
  let sizes = if !quick then [ 200; 400 ] else [ 200; 500; 1000; 2000; 4000 ] in
  let ticks = 10 and attack_at = 3 and monitors = 3 and grace = 4 in
  let run_size ases =
    let spec =
      { World.default_spec with
        World.graph = { As_graph.default_spec with As_graph.ases; seed = 11 } }
    in
    let w0, synth_ms = time_ms (fun () -> World.build spec) in
    let g = World.graph w0 in
    let stats = As_graph.degree_stats g in
    let rig, rig_ms =
      time_ms (fun () ->
          Rpki_sim.Loop.world_scenario ~monitors ~grace
            ~placement:Placement.By_degree ~gossip_period:1 ~world:spec ())
    in
    let sim = rig.Rpki_sim.Loop.wr_sim in
    let atk =
      Split_view.plan ~authority:rig.Rpki_sim.Loop.wr_target_authority
        ~target_filename:rig.Rpki_sim.Loop.wr_target_filename ()
    in
    let tick_ms = ref [] in
    for now = 1 to ticks do
      if now = attack_at then Split_view.apply atk (Rpki_sim.Loop.transport sim);
      let _, ms = time_ms (fun () -> Rpki_sim.Loop.step sim ~now) in
      tick_ms := ms :: !tick_ms
    done;
    let tick_ms = List.rev !tick_ms in
    let avg_tick = List.fold_left ( +. ) 0. tick_ms /. float_of_int ticks in
    let max_tick = List.fold_left Float.max 0. tick_ms in
    let fork = Rpki_sim.Loop.first_fork_tick sim in
    let evidence =
      match Rpki_sim.Loop.gossip_mesh sim with
      | None -> ""
      | Some gm -> (
        match Gossip.forks gm with
        | [] -> ""
        | alarm :: _ -> (
          let key_of name =
            List.find_map
              (fun (v : Gossip.vantage) ->
                if String.equal v.Gossip.v_name name then
                  Some (Relying_party.transparency_key v.Gossip.v_rp)
                else None)
              (Gossip.vantages gm)
          in
          match Evidence.export ~key_of alarm with Ok bytes -> bytes | Error _ -> ""))
    in
    (* the acceptance bar: degree-placed monitors must catch the fork at
       every size, with exportable proof *)
    (match fork with
    | None -> failwith (Printf.sprintf "scale: fork undetected at %d ASes" ases)
    | Some tk ->
      if tk < attack_at || tk > attack_at + grace + 2 then
        failwith (Printf.sprintf "scale: fork tick t%d out of window at %d ASes" tk ases));
    if String.length evidence = 0 then
      failwith (Printf.sprintf "scale: no exportable fork evidence at %d ASes" ases);
    let latency = match fork with Some tk -> tk - attack_at | None -> -1 in
    ( ases, List.length (World.cas w0), stats.As_graph.d_max, stats.As_graph.d_median,
      synth_ms, rig_ms, avg_tick, max_tick, latency, String.length evidence )
  in
  let cells = List.map run_size sizes in
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "ASes"; "CAs"; "d_max"; "d_med"; "synth ms"; "rig ms"; "ms/tick"; "max tick";
        "detect +t"; "proof B" ]
  in
  List.iter
    (fun (ases, cas, dmax, dmed, synth_ms, rig_ms, avg_tick, max_tick, latency, proof) ->
      Table.add_row t
        [ string_of_int ases; string_of_int cas; string_of_int dmax; string_of_int dmed;
          Printf.sprintf "%.0f" synth_ms; Printf.sprintf "%.0f" rig_ms;
          Printf.sprintf "%.1f" avg_tick; Printf.sprintf "%.1f" max_tick;
          Printf.sprintf "%d" latency; string_of_int proof ])
    cells;
  Table.print t;
  Printf.printf
    "\nEvery size: stealth fork injected at t%d, detected by the degree-placed\n\
     gossip mesh within the grace window, with an exportable evidence bundle.\n\
     Detection latency is flat in topology size; per-tick cost tracks the\n\
     announcement count (one RIB per published prefix), not the AS count.\n"
    attack_at;
  write_json ~name:"scale"
    (Printf.sprintf
       "{\"experiment\":\"scale\",\"ticks\":%d,\"attack_at\":%d,\"monitors\":%d,\
        \"placement\":\"degree\",\"sizes\":[%s]}"
       ticks attack_at monitors
       (String.concat ","
          (List.map
             (fun (ases, cas, dmax, dmed, synth_ms, rig_ms, avg_tick, max_tick, latency,
                   proof) ->
               Printf.sprintf
                 "{\"ases\":%d,\"cas\":%d,\"d_max\":%d,\"d_median\":%d,\
                  \"synth_ms\":%.1f,\"rig_ms\":%.1f,\"avg_tick_ms\":%.2f,\
                  \"max_tick_ms\":%.2f,\"detection_latency\":%d,\"evidence_bytes\":%d}"
                 ases cas dmax dmed synth_ms rig_ms avg_tick max_tick latency proof)
             cells)))

(* ------------------------------------------------------------------ *)
(* Fault mix: corpus-weighted faults x unsafe-VRP policy               *)
(* ------------------------------------------------------------------ *)

(* Two questions, one harness.

   The downgrade grid: make one sub-CA's publication point unreachable and
   sweep what the relying party does with the VRPs that covered its space
   (accept / warn / reject, Routinator's --unsafe-vrps) against whether
   stale fallback is allowed.  The interesting cell is reject without
   stale: dropping the covering ROA restores the victim's route (the Side
   Effect 6 outage heals)... and silently lets a hijack of the same space
   propagate, because the prefix flips from INVALID to UNKNOWN for
   everyone.  Warn keeps the protection and surfaces the hazard instead.

   The corpus sweep: the fault-mix engine rolls every authority each tick
   against the empirical error distribution (expired CRLs 47x, missing
   manifests 20x, seqnum gaps 18x, ... from the checked-in corpus table)
   and we read the degradation off the loop per rate x policy.  A rate-0
   engine run is asserted trace-identical to a run with no engine. *)
let faultmix () =
  header "Fault mix: corpus faults x unsafe-VRP policy (graceful degradation)";
  let ticks = if !quick then 10 else 14 in
  let outage_at = 4 in
  let as_attacker = 64666 in
  let legit = Route.make (V4.p "63.174.16.0/20") Model.as_continental in
  let hijack = Route.make (V4.p "63.174.16.0/20") as_attacker in
  let unsafe_policies =
    [ ("accept", Relying_party.Unsafe_accept);
      ("warn", Relying_party.Unsafe_warn);
      ("reject", Relying_party.Unsafe_reject) ]
  in
  let fetch_policies =
    [ ("default", Relying_party.default_policy);
      ("no-stale",
       { Relying_party.default_policy with Relying_party.use_stale = false }) ]
  in
  (* --- the downgrade grid ------------------------------------------ *)
  let run_cell ~unsafe ~fetch_policy =
    let rig = Rpki_sim.Loop.fault_mix_scenario ~unsafe ~fetch_policy ~rate:0. () in
    let sim = rig.Rpki_sim.Loop.fm_sim in
    List.init ticks (fun i ->
        let now = i + 1 in
        if now = outage_at then
          Transport.set_fault (Rpki_sim.Loop.transport sim)
            ~uri:rig.Rpki_sim.Loop.fm_victim_uri Transport.Unreachable;
        let _, r = Rpki_sim.Loop.fault_mix_step rig ~now in
        let result = Option.get (Relying_party.last_result sim.Rpki_sim.Loop.rp) in
        ( now,
          Origin_validation.classify result.Relying_party.index legit,
          Origin_validation.classify result.Relying_party.index hijack,
          r.Rpki_sim.Loop.unsafe_count,
          result ))
  in
  let grid =
    List.map
      (fun (fn, fp) ->
        ( fn,
          List.map
            (fun (un, up) -> (un, run_cell ~unsafe:up ~fetch_policy:fp))
            unsafe_policies ))
      fetch_policies
  in
  let final tl = List.nth tl (ticks - 1) in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "fetch"; "unsafe"; "victim route"; "hijack route"; "unsafe VRPs"; "VRPs" ]
  in
  List.iter
    (fun (fn, cells) ->
      List.iter
        (fun (un, tl) ->
          let _, lg, hj, unsafe_n, result = final tl in
          Table.add_row t
            [ fn; un;
              Origin_validation.state_to_string lg;
              Origin_validation.state_to_string hj;
              string_of_int unsafe_n;
              string_of_int (List.length result.Relying_party.vrps) ])
        cells)
    grid;
  Table.print t;
  (* the acceptance bar: the no-stale column must show the downgrade
     interaction — reject restores the victim's route and loses the
     hijack protection; warn keeps the protection and reports the unsafe
     set; accept reports nothing *)
  let cell fn un = List.assoc un (List.assoc fn grid) in
  let _, lg_a, hj_a, un_a, res_a = final (cell "no-stale" "accept") in
  let _, lg_w, hj_w, un_w, res_w = final (cell "no-stale" "warn") in
  let _, lg_r, hj_r, un_r, res_r = final (cell "no-stale" "reject") in
  if not (lg_a = Origin_validation.Invalid && hj_a = Origin_validation.Invalid && un_a = 0)
  then failwith "faultmix: accept cell should go invalid with no unsafe reporting";
  if not (lg_w = Origin_validation.Invalid && hj_w = Origin_validation.Invalid && un_w > 0)
  then failwith "faultmix: warn cell should keep protection and report unsafe VRPs";
  if not (lg_r = Origin_validation.Unknown && hj_r = Origin_validation.Unknown && un_r > 0)
  then failwith "faultmix: reject cell should flip the space to unknown";
  if res_w.Relying_party.vrps <> res_a.Relying_party.vrps then
    failwith "faultmix: warn must not change the effective VRP set";
  if
    not
      (List.for_all
         (fun v -> List.exists (fun u -> Vrp.compare u v = 0) res_a.Relying_party.vrps)
         res_r.Relying_party.vrps)
  then failwith "faultmix: reject's VRP set must be a subset of accept's";
  Printf.printf
    "\nWith stale fallback the outage is masked (cached data keeps serving) and\n\
     no VRP is unsafe.  Without it, Continental's resources join the failed\n\
     set: ACCEPT keeps Sprint's covering /12-13 ROA, so both the victim route\n\
     and the hijack stay INVALID (outage, but protected).  REJECT drops the\n\
     covering VRP: the victim route heals to UNKNOWN — and so does the\n\
     hijack, which now propagates.  WARN = accept + %d unsafe VRP(s) surfaced.\n"
    un_w;
  (* --- rate-0 is trace-identical to no-engine ----------------------- *)
  let trace_of records =
    String.concat ";"
      (List.map
         (fun (r : Rpki_sim.Loop.tick_record) ->
           Printf.sprintf "%d:%d:%d:%d:%d:%d:%b" r.Rpki_sim.Loop.time
             r.Rpki_sim.Loop.vrp_count r.Rpki_sim.Loop.issue_count
             r.Rpki_sim.Loop.rtr_serial r.Rpki_sim.Loop.sync_elapsed
             r.Rpki_sim.Loop.unsafe_count r.Rpki_sim.Loop.budget_exhausted)
         records)
  in
  let rig0 = Rpki_sim.Loop.fault_mix_scenario ~rate:0. () in
  let with_engine =
    List.init ticks (fun i -> snd (Rpki_sim.Loop.fault_mix_step rig0 ~now:(i + 1)))
  in
  let sc = Rpki_sim.Loop.section6_scenario () in
  let without_engine =
    List.init ticks (fun i -> Rpki_sim.Loop.step sc.Rpki_sim.Loop.sim ~now:(i + 1))
  in
  let rate0_identical = trace_of with_engine = trace_of without_engine in
  if not rate0_identical then
    failwith "faultmix: rate-0 engine run diverged from the engine-less run";
  Printf.printf "\nrate-0 engine run: trace-identical to a run with no engine.\n";
  (* --- the corpus sweep: fault rate x unsafe policy ----------------- *)
  let rates = if !quick then [ 0.; 0.3 ] else [ 0.; 0.15; 0.4 ] in
  let mix_ticks = if !quick then 12 else 24 in
  (* the sweep runs without stale fallback, so the corpus's transport
     categories (dns / refused / timeout, ~10% of draws) open genuine
     failed-CA windows for the unsafe analysis instead of being masked by
     the cache *)
  let run_mix ~rate ~unsafe =
    let rig =
      Rpki_sim.Loop.fault_mix_scenario ~seed:7 ~rate ~unsafe
        ~fetch_policy:(List.assoc "no-stale" fetch_policies) ()
    in
    let records =
      List.init mix_ticks (fun i -> snd (Rpki_sim.Loop.fault_mix_step rig ~now:(i + 1)))
    in
    let engine = rig.Rpki_sim.Loop.fm_engine in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 records in
    let issues = sum (fun r -> r.Rpki_sim.Loop.issue_count) in
    let max_unsafe =
      List.fold_left (fun acc r -> max acc r.Rpki_sim.Loop.unsafe_count) 0 records
    in
    let last = List.nth records (mix_ticks - 1) in
    ( Fault_mix.injected engine,
      Fault_mix.repaired engine,
      Fault_mix.counts engine,
      float_of_int issues /. float_of_int mix_ticks,
      max_unsafe,
      last.Rpki_sim.Loop.vrp_count )
  in
  let mix =
    List.concat_map
      (fun rate ->
        List.map
          (fun (un, up) -> (rate, un, run_mix ~rate ~unsafe:up))
          unsafe_policies)
      rates
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "rate"; "unsafe"; "injected"; "repaired"; "issues/tick"; "max unsafe"; "VRPs" ]
  in
  List.iter
    (fun (rate, un, (inj, rep, _, ipt, mu, vrps)) ->
      Table.add_row t
        [ Printf.sprintf "%.2f" rate; un; string_of_int inj; string_of_int rep;
          Printf.sprintf "%.1f" ipt; string_of_int mu; string_of_int vrps ])
    mix;
  Table.print t;
  (* per-category injections at the heaviest swept rate, against the
     corpus weights they were drawn from *)
  let heavy_rate = List.fold_left max 0. rates in
  (match
     List.find_opt (fun (rate, un, _) -> rate = heavy_rate && un = "warn") mix
   with
  | None -> ()
  | Some (_, _, (_, _, counts, _, _, _)) ->
    Printf.printf "\ninjections at rate %.2f (corpus weight in parens):\n" heavy_rate;
    List.iter
      (fun (c, n) ->
        Printf.printf "  %-22s %3d  (%d/126)\n" (Fault_corpus.to_string c) n
          (match List.assoc_opt c Fault_corpus.weights with Some w -> w | None -> 0))
      counts);
  (* --- machine-readable output -------------------------------------- *)
  let json_body =
    let timeline_json tl =
      String.concat ","
        (List.map
           (fun (now, lg, hj, unsafe_n, result) ->
             Printf.sprintf
               "{\"tick\":%d,\"victim\":\"%s\",\"hijack\":\"%s\",\"unsafe\":%d,\
                \"vrps\":%d}"
               now
               (Origin_validation.state_to_string lg)
               (Origin_validation.state_to_string hj)
               unsafe_n
               (List.length result.Relying_party.vrps))
           tl)
    in
    let downgrade_json =
      List.concat_map
        (fun (fn, cells) ->
          List.map
            (fun (un, tl) ->
              Printf.sprintf
                "{\"fetch\":\"%s\",\"unsafe\":\"%s\",\"timeline\":[%s]}" fn un
                (timeline_json tl))
            cells)
        grid
    in
    let mix_json =
      List.map
        (fun (rate, un, (inj, rep, counts, ipt, mu, vrps)) ->
          Printf.sprintf
            "{\"rate\":%.2f,\"unsafe\":\"%s\",\"injected\":%d,\"repaired\":%d,\
             \"counts\":{%s},\"issues_per_tick\":%.2f,\"max_unsafe\":%d,\
             \"final_vrps\":%d}"
            rate un inj rep
            (String.concat ","
               (List.map
                  (fun (c, n) ->
                    Printf.sprintf "\"%s\":%d" (Fault_corpus.to_string c) n)
                  counts))
            ipt mu vrps)
        mix
    in
    Printf.sprintf
      "{\"experiment\":\"faultmix\",\"ticks\":%d,\"outage_at\":%d,\
       \"mix_ticks\":%d,\"rate0_identical\":%b,\"downgrade\":[%s],\"mix\":[%s]}"
      ticks outage_at mix_ticks rate0_identical
      (String.concat "," downgrade_json)
      (String.concat "," mix_json)
  in
  (* every swept axis must be present in the export *)
  let must_contain needle =
    let len_n = String.length needle and len_b = String.length json_body in
    let rec scan i =
      if i + len_n > len_b then
        failwith (Printf.sprintf "faultmix: JSON export lacks %s" needle)
      else if String.sub json_body i len_n = needle then ()
      else scan (i + 1)
    in
    scan 0
  in
  List.iter must_contain
    (List.map (fun (un, _) -> Printf.sprintf "\"unsafe\":\"%s\"" un) unsafe_policies
    @ List.map (fun (fn, _) -> Printf.sprintf "\"fetch\":\"%s\"" fn) fetch_policies
    @ List.map (fun rate -> Printf.sprintf "\"rate\":%.2f" rate) rates);
  write_json ~name:"faultmix" json_body

(* ------------------------------------------------------------------ *)
(* Gossip at scale: overlays, round-level caching, Byzantine vantages   *)
(* ------------------------------------------------------------------ *)

(* Three arms.

   Overlay grid (canned scenario): the loop's own gossip is parked beyond
   the horizon — the same trick the multivantage arm uses to park it
   entirely — so the bench can drive Gossip.round by hand and time it in
   isolation from validation.  Sweeps overlay x vantage count under the
   stealthy split view, measuring pulls per round, gossip wall-clock,
   head verifications executed vs memoized, proof-cache hits and the
   detection round.

   Byzantine sweep: f equivocating monitors of n vantages, each serving
   the victim a shadow log mirroring the victim's forked view while
   honest peers keep seeing the honest one (Rpki_attack.Equivocator).
   Detection is then pure reachability: it survives exactly while the
   victim keeps at least one honest overlay neighbor — the BGP-Sentry
   honest-majority threshold, checked cell by cell.

   World arm (full mode): a PR 8 generated world re-run under a partial
   mesh, so the overlay win is not an artifact of the canned topology. *)

type gossip_cell = {
  gc_n : int;
  gc_overlay : Gossip.Overlay.spec;
  gc_pulls : int;          (* per round, all vantages alive *)
  gc_cold_ms : float;      (* round 1: lazy per-log keygen + first proofs *)
  gc_ms : float;           (* warm gossip wall-clock, rounds 2..ticks *)
  gc_fork : int option;    (* round of first Fork alarm *)
  gc_verifies : int;
  gc_verifies_saved : int;
  gc_proofs_built : int;
  gc_proofs_reused : int;
  gc_proof_bytes : int;
}

let gossip () =
  header "Gossip at scale: overlays, round caching, Byzantine equivocators";
  let ticks = 6 and attack_at = 3 in
  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  let overlay_label = Gossip.Overlay.to_string in
  let fork_delta = function None -> "-" | Some tk -> string_of_int (tk - attack_at) in
  (* --- arm 1: overlay x n on the canned scenario ------------------- *)
  let counts = if !quick then [ 16; 64 ] else [ 16; 64; 128 ] in
  let overlays =
    if !quick then
      [ Gossip.Overlay.Full_mesh; Gossip.Overlay.K_regular 2; Gossip.Overlay.K_regular 4 ]
    else
      [ Gossip.Overlay.Full_mesh; Gossip.Overlay.K_regular 2; Gossip.Overlay.K_regular 4;
        Gossip.Overlay.Star 3; Gossip.Overlay.Random_peers 3 ]
  in
  let cell_of_reports ~n ~overlay reports ~cold_ms ~warm_ms fork =
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
    { gc_n = n; gc_overlay = overlay;
      gc_pulls = (match List.rev reports with last :: _ -> last.Gossip.r_pulls | [] -> 0);
      gc_cold_ms = cold_ms; gc_ms = warm_ms; gc_fork = fork;
      gc_verifies = sum (fun r -> r.Gossip.r_verifies);
      gc_verifies_saved = sum (fun r -> r.Gossip.r_verifies_saved);
      gc_proofs_built = sum (fun r -> r.Gossip.r_proofs_built);
      gc_proofs_reused = sum (fun r -> r.Gossip.r_proofs_reused);
      gc_proof_bytes = sum (fun r -> r.Gossip.r_proof_bytes) }
  in
  let run_overlay_cell ~n ~overlay =
    let sv =
      Rpki_sim.Loop.split_view_scenario ~monitors:(n - 1) ~gossip_period:(ticks + 1)
        ~overlay ()
    in
    let sim = sv.Rpki_sim.Loop.sv_sim in
    let g = Option.get (Rpki_sim.Loop.gossip_mesh sim) in
    let atk =
      Split_view.plan ~authority:sv.Rpki_sim.Loop.sv_model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ~stealth:Split_view.Stealthy ()
    in
    (* round 1 pays the one-time lazy keygen for every vantage's log — the
       same n signatures under any overlay — so it is reported apart from
       the warm rounds the steady-state claim is about *)
    let reports = ref [] and cold = ref 0. and warm = ref 0. and fork = ref None in
    for now = 1 to ticks do
      if now = attack_at then Split_view.apply atk (Rpki_sim.Loop.transport sim);
      ignore (Rpki_sim.Loop.step sim ~now);
      let rep, ms = time_ms (fun () -> Gossip.round g ~now) in
      if now = 1 then cold := ms else warm := !warm +. ms;
      if !fork = None && List.exists Gossip.is_fork rep.Gossip.r_alarms then fork := Some now;
      reports := rep :: !reports
    done;
    cell_of_reports ~n ~overlay (List.rev !reports) ~cold_ms:!cold ~warm_ms:!warm !fork
  in
  let grid =
    List.concat_map
      (fun n -> List.map (fun overlay -> run_overlay_cell ~n ~overlay) overlays)
      counts
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "n"; "overlay"; "pulls/round"; "detect +rounds"; "cold ms"; "warm ms"; "verifies";
        "memoized"; "proofs built"; "reused" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ string_of_int c.gc_n; overlay_label c.gc_overlay; string_of_int c.gc_pulls;
          fork_delta c.gc_fork; Printf.sprintf "%.1f" c.gc_cold_ms;
          Printf.sprintf "%.1f" c.gc_ms;
          string_of_int c.gc_verifies; string_of_int c.gc_verifies_saved;
          string_of_int c.gc_proofs_built; string_of_int c.gc_proofs_reused ])
    grid;
  Table.print t;
  let cell n overlay =
    List.find (fun c -> c.gc_n = n && c.gc_overlay = overlay) grid
  in
  (* structural pull counts: the full mesh is n(n-1); a k-regular overlay
     with even k is exactly nk pulls a round — the O(n·k) claim *)
  List.iter
    (fun n ->
      let mesh = cell n Gossip.Overlay.Full_mesh in
      if mesh.gc_pulls <> n * (n - 1) then
        failwith (Printf.sprintf "gossip: full mesh at n=%d ran %d pulls" n mesh.gc_pulls);
      List.iter
        (fun k ->
          let c = cell n (Gossip.Overlay.K_regular k) in
          if c.gc_pulls <> n * k then
            failwith
              (Printf.sprintf "gossip: k=%d at n=%d ran %d pulls, wanted %d" k n
                 c.gc_pulls (n * k)))
        [ 2; 4 ];
      (* every overlay must still catch the stealth split view; the sparse
         k-regular ring within 2 rounds of the attack *)
      List.iter
        (fun overlay ->
          match (cell n overlay).gc_fork with
          | None ->
            failwith
              (Printf.sprintf "gossip: %s at n=%d missed the split view"
                 (overlay_label overlay) n)
          | Some tk ->
            if overlay = Gossip.Overlay.K_regular 2 && tk - attack_at > 2 then
              failwith
                (Printf.sprintf "gossip: k:2 at n=%d detected only %d rounds after attack"
                   n (tk - attack_at)))
        overlays)
    counts;
  (* the head-verify memo: one verification per served log per round
     instead of one per edge *)
  List.iter
    (fun n ->
      let mesh = cell n Gossip.Overlay.Full_mesh in
      if mesh.gc_verifies > ticks * (n + 1) then
        failwith
          (Printf.sprintf "gossip: full mesh at n=%d verified %d heads (memo broken?)" n
             mesh.gc_verifies))
    counts;
  (* the acceptance bar, full mode: at n=128 a k=4 overlay does >= 8x fewer
     pulls and >= 5x less gossip wall-clock than the mesh, still detecting *)
  if not !quick then begin
    let mesh = cell 128 Gossip.Overlay.Full_mesh and k4 = cell 128 (Gossip.Overlay.K_regular 4) in
    if mesh.gc_pulls < 8 * k4.gc_pulls then
      failwith
        (Printf.sprintf "gossip: k:4 pull reduction only %.1fx at n=128"
           (float_of_int mesh.gc_pulls /. float_of_int k4.gc_pulls));
    if mesh.gc_ms < 5. *. k4.gc_ms then
      failwith
        (Printf.sprintf
           "gossip: k:4 warm wall-clock reduction only %.1fx at n=128 (%.1f vs %.1f ms)"
           (mesh.gc_ms /. k4.gc_ms) mesh.gc_ms k4.gc_ms);
    if k4.gc_fork = None then failwith "gossip: k:4 at n=128 missed the split view";
    Printf.printf
      "n=128: k:4 vs mesh — %.1fx fewer pulls, %.1fx less warm gossip wall-clock, detected +%s rounds\n"
      (float_of_int mesh.gc_pulls /. float_of_int k4.gc_pulls)
      (mesh.gc_ms /. k4.gc_ms) (fork_delta k4.gc_fork)
  end;
  (* --- arm 2: the Byzantine sweep ---------------------------------- *)
  let byz_n = if !quick then 10 else 16 in
  let byz_ticks = 8 in
  let byz_overlays =
    if !quick then [ Gossip.Overlay.Full_mesh; Gossip.Overlay.K_regular 2; Gossip.Overlay.Star 3 ]
    else
      [ Gossip.Overlay.Full_mesh; Gossip.Overlay.K_regular 4; Gossip.Overlay.Star 3;
        Gossip.Overlay.Random_peers 3 ]
  in
  let byz_fs =
    if !quick then [ 0; 2; 4 ] else [ 0; 3; 5; 7; 11; byz_n - 2 ]
  in
  (* the fork runs from the victim's FIRST sync: a victim with honest
     pre-attack history is self-evidencing (its own first-seen record
     conflicts with any mirrored shadow's delta and the victim itself
     raises the Fork), so a mid-history fork defeats the equivocators by
     construction.  From t1 the victim's log is forked from birth and
     detection reduces to honest adjacency — the threshold under test. *)
  let byz_attack_at = 1 in
  let run_byz_cell ~overlay ~f =
    let sv =
      Rpki_sim.Loop.split_view_scenario ~monitors:(byz_n - 1) ~gossip_period:1 ~overlay ()
    in
    let sim = sv.Rpki_sim.Loop.sv_sim in
    let model = sv.Rpki_sim.Loop.sv_model in
    let g = Option.get (Rpki_sim.Loop.gossip_mesh sim) in
    (* one fixed shuffle, first f: the Byzantine sets are nested, so the
       sweep reads as a threshold *)
    let byz =
      take f (Rpki_util.Rng.shuffle (Rpki_util.Rng.create 0xb12a) sv.Rpki_sim.Loop.sv_monitors)
    in
    let atk =
      Split_view.plan ~authority:model.Model.continental
        ~target_filename:sv.Rpki_sim.Loop.sv_target_filename ~stealth:Split_view.Stealthy ()
    in
    let eqs =
      List.map
        (fun name ->
          let v = Rpki_sim.Loop.vantage sim ~name in
          let shadow =
            Model.relying_party ~name ~asn:(Relying_party.asn v.Gossip.v_rp) model
          in
          let eq =
            Equivocator.plan ~universe:model.Model.universe ~name ~shadow
              ~fork_to:(fun r -> String.equal r "victim-rp") ()
          in
          Equivocator.apply eq g;
          eq)
        byz
    in
    for now = 1 to byz_ticks do
      if now = byz_attack_at then begin
        (* the victim's view forks — and every shadow forks with it, so the
           logs served to the victim keep mirroring what the victim sees *)
        Split_view.apply atk (Rpki_sim.Loop.transport sim);
        List.iter (fun eq -> Split_view.apply atk (Equivocator.shadow_transport eq)) eqs
      end;
      ignore (Rpki_sim.Loop.step sim ~now)
    done;
    let detected = Rpki_sim.Loop.first_fork_tick sim in
    let names = List.map (fun (v : Gossip.vantage) -> v.Gossip.v_name) (Gossip.vantages g) in
    let honest_edge (a, b) =
      let honest x = not (List.mem x byz) in
      (String.equal a "victim-rp" && honest b && not (String.equal b "victim-rp"))
      || (String.equal b "victim-rp" && honest a && not (String.equal a "victim-rp"))
    in
    let honest_adjacent =
      List.exists
        (fun now ->
          List.exists honest_edge
            (Gossip.Overlay.pulls overlay ~seed:Gossip.Overlay.default_seed ~round:now names))
        (List.init (byz_ticks - byz_attack_at + 1) (fun i -> byz_attack_at + i))
    in
    (f, overlay, byz, detected, honest_adjacent)
  in
  let byz_cells =
    List.concat_map
      (fun overlay -> List.map (fun f -> run_byz_cell ~overlay ~f) byz_fs)
      byz_overlays
  in
  let bt =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left; Table.Left ]
      [ "overlay"; "byzantine f"; "of n"; "honest neighbor"; "fork detected" ]
  in
  List.iter
    (fun (f, overlay, _, detected, adj) ->
      Table.add_row bt
        [ overlay_label overlay; string_of_int f; string_of_int byz_n;
          (if adj then "yes" else "no");
          (match detected with Some tk -> Printf.sprintf "t%d" tk | None -> "missed") ])
    byz_cells;
  Printf.printf "\nByzantine equivocators: f of n=%d vantages serve the victim a forked shadow log\n"
    byz_n;
  Table.print bt;
  List.iter
    (fun (f, overlay, _, detected, adj) ->
      (* detection is exactly honest adjacency of the victim *)
      if adj && detected = None then
        failwith
          (Printf.sprintf "gossip: %s f=%d — honest neighbor but no detection"
             (overlay_label overlay) f);
      if (not adj) && detected <> None then
        failwith
          (Printf.sprintf "gossip: %s f=%d — detection without an honest neighbor?"
             (overlay_label overlay) f);
      if f = 0 && detected = None then
        failwith (Printf.sprintf "gossip: %s f=0 undetected" (overlay_label overlay));
      (* the honest-majority bar: under f < n/2 the mesh and the k-regular
         ring keep the victim honest-connected, so detection must hold *)
      if
        f < byz_n / 2
        && (overlay = Gossip.Overlay.Full_mesh
           || overlay = Gossip.Overlay.K_regular 4
           || overlay = Gossip.Overlay.K_regular 2)
        && detected = None
      then
        failwith
          (Printf.sprintf "gossip: %s f=%d < n/2 but detection failed"
             (overlay_label overlay) f))
    byz_cells;
  (* --- arm 3 (full mode): a generated world under a partial mesh ---- *)
  let world_cells =
    if !quick then []
    else begin
      let monitors = 32 in
      List.map
        (fun overlay ->
          let rig =
            Rpki_sim.Loop.world_scenario ~monitors ~gossip_period:(ticks + 1) ~overlay ()
          in
          let sim = rig.Rpki_sim.Loop.wr_sim in
          let g = Option.get (Rpki_sim.Loop.gossip_mesh sim) in
          let atk =
            Split_view.plan ~authority:rig.Rpki_sim.Loop.wr_target_authority
              ~target_filename:rig.Rpki_sim.Loop.wr_target_filename ()
          in
          let reports = ref [] and cold = ref 0. and warm = ref 0. and fork = ref None in
          for now = 1 to ticks do
            if now = attack_at then Split_view.apply atk (Rpki_sim.Loop.transport sim);
            ignore (Rpki_sim.Loop.step sim ~now);
            let rep, ms = time_ms (fun () -> Gossip.round g ~now) in
            if now = 1 then cold := ms else warm := !warm +. ms;
            if !fork = None && List.exists Gossip.is_fork rep.Gossip.r_alarms then
              fork := Some now;
            reports := rep :: !reports
          done;
          cell_of_reports ~n:(monitors + 1) ~overlay (List.rev !reports) ~cold_ms:!cold
            ~warm_ms:!warm !fork)
        [ Gossip.Overlay.Full_mesh; Gossip.Overlay.K_regular 4 ]
    end
  in
  List.iter
    (fun c ->
      Printf.printf
        "world (n=%d, %s): %d pulls/round, %.1f warm gossip ms, detected +%s rounds\n"
        c.gc_n (overlay_label c.gc_overlay) c.gc_pulls c.gc_ms (fork_delta c.gc_fork);
      if c.gc_fork = None then
        failwith
          (Printf.sprintf "gossip: %s missed the split view on the generated world"
             (overlay_label c.gc_overlay)))
    world_cells;
  (* --- JSON export -------------------------------------------------- *)
  let cell_json c =
    Printf.sprintf
      "{\"n\":%d,\"overlay\":\"%s\",\"pulls_per_round\":%d,\"cold_ms\":%.2f,\
       \"warm_gossip_ms\":%.2f,\"fork_round\":%s,\"detect_rounds_after_attack\":%s,\
       \"verifies\":%d,\"verifies_saved\":%d,\"proofs_built\":%d,\"proofs_reused\":%d,\
       \"proof_bytes\":%d}"
      c.gc_n (overlay_label c.gc_overlay) c.gc_pulls c.gc_cold_ms c.gc_ms
      (match c.gc_fork with Some tk -> string_of_int tk | None -> "null")
      (match c.gc_fork with Some tk -> string_of_int (tk - attack_at) | None -> "null")
      c.gc_verifies c.gc_verifies_saved c.gc_proofs_built c.gc_proofs_reused c.gc_proof_bytes
  in
  let byz_json (f, overlay, byz, detected, adj) =
    Printf.sprintf
      "{\"overlay\":\"%s\",\"f\":%d,\"n\":%d,\"byzantine\":[%s],\"honest_adjacent\":%b,\
       \"fork_tick\":%s}"
      (overlay_label overlay) f byz_n
      (String.concat "," (List.map (Printf.sprintf "\"%s\"") byz))
      adj
      (match detected with Some tk -> string_of_int tk | None -> "null")
  in
  write_json ~name:"gossip"
    (Printf.sprintf
       "{\"experiment\":\"gossip\",\"ticks\":%d,\"attack_at\":%d,\"byzantine_attack_at\":%d,\
        \"overlay_grid\":[%s],\"byzantine_sweep\":[%s],\"world\":[%s]}"
       ticks attack_at byz_attack_at
       (String.concat "," (List.map cell_json grid))
       (String.concat "," (List.map byz_json byz_cells))
       (String.concat "," (List.map cell_json world_cells)))

let all : (string * (unit -> unit)) list =
  [ ("fig2", fig2); ("fig3", fig3); ("tab4", tab4); ("fig5", fig5); ("tab6", tab6);
    ("se5", se5); ("se6", se6); ("se7", se7); ("campaign", campaign); ("adoption", adoption);
    ("depth", depth); ("sync-incremental", sync_incremental); ("stall", stall);
    ("transparency", transparency); ("restart", restart); ("multivantage", multivantage);
    ("rtr", rtr); ("soak", soak); ("scale", scale); ("faultmix", faultmix);
    ("gossip", gossip) ]
